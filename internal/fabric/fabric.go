// Package fabric simulates message transport across a folded-Clos network.
//
// Messages are segmented into MTU-sized chunks that cut through the network:
// a chunk begins serializing on hop i+1 as soon as it has fully serialized
// on hop i and crossed the wire/chassis, so long messages pipeline across
// hops while every link remains a FIFO contention point. This chunk-level
// virtual cut-through is the standard fidelity/cost compromise of
// cluster-scale simulators: per-flit modelling would cost thousands of
// events per message for no change in the behaviours this repository
// studies.
//
// The path of a message is:
//
//	host PCI bus -> injection link -> [uplink -> downlink] -> ejection link -> host PCI bus
//
// The PCI-X stage is optional (HostBandwidth == 0 disables it). It models
// the paper's platform constraint that both networks claim ~2 GB/s at the
// physical layer but deliver well under 1 GB/s through a 133 MHz PCI-X
// slot. PCI-X is a half-duplex shared bus, so a node's inbound and outbound
// DMA contend with each other — and, at 2 processes per node, with the
// other rank's traffic.
//
// Routing policy is a per-fabric choice: the InfiniBand model uses the
// deterministic destination-based spine selection a subnet manager's linear
// forwarding tables produce, while the Elan model uses adaptive
// (least-loaded uplink) selection, which QsNetII implements in hardware.
// Adaptive selection happens per chunk at the moment the chunk reaches the
// leaf's uplink stage, mirroring per-packet hardware adaptivity.
package fabric

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

// Params defines the physical characteristics of a fabric.
type Params struct {
	// LinkBandwidth is the per-direction data rate of every cable.
	LinkBandwidth units.Rate
	// WireLatency is the propagation delay of one cable.
	WireLatency units.Duration
	// ChassisLatency is the traversal delay of one switch chassis
	// (covering its internal crossbar stages).
	ChassisLatency units.Duration
	// MTU is the chunking granularity for cut-through pipelining.
	MTU units.Bytes
	// PacketOverhead is added to every chunk's serialization time
	// (headers, CRC, encoding overhead).
	PacketOverhead units.Bytes
	// HostBandwidth is the effective DMA rate of each node's PCI-X bus.
	// Zero disables the host stage.
	HostBandwidth units.Rate
	// HostLatency is the DMA startup cost paid per chunk crossing a host
	// bus.
	HostLatency units.Duration
	// Adaptive selects least-loaded-uplink routing instead of
	// deterministic destination routing.
	Adaptive bool
}

// Validate reports configuration errors.
func (p *Params) Validate() error {
	if p.LinkBandwidth <= 0 {
		return fmt.Errorf("fabric: non-positive link bandwidth")
	}
	if p.MTU <= 0 {
		return fmt.Errorf("fabric: non-positive MTU")
	}
	if p.WireLatency < 0 || p.ChassisLatency < 0 || p.PacketOverhead < 0 || p.HostLatency < 0 {
		return fmt.Errorf("fabric: negative latency or overhead")
	}
	if p.HostBandwidth < 0 {
		return fmt.Errorf("fabric: negative host bandwidth")
	}
	return nil
}

// Fabric is an instantiated network: a topology plus one FIFO server per
// unidirectional link and one per node PCI bus.
type Fabric struct {
	eng    *sim.Engine
	clos   *topology.Clos
	params Params
	links  []*sim.Server // indexed by topology.LinkID
	hosts  []*sim.Server // per-node half-duplex PCI bus; nil if disabled

	messages uint64
	bytes    units.Bytes

	// Observability (nil-safe no-ops when the engine has no registry).
	mMsgs     *metrics.Counter
	mBytes    *metrics.Counter
	mChunks   *metrics.Counter
	hWait     *metrics.Histogram // per-chunk link queueing delay, ns
	track     *metrics.Track
	linkBytes []units.Bytes // payload bytes per link; nil when no registry
}

// New builds a fabric over nodes endpoints using chassis of the given radix.
func New(eng *sim.Engine, nodes, radix int, params Params) (*Fabric, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	clos, err := topology.NewClos(nodes, radix)
	if err != nil {
		return nil, err
	}
	f := &Fabric{eng: eng, clos: clos, params: params}
	f.links = make([]*sim.Server, clos.NumLinks())
	for i := range f.links {
		f.links[i] = eng.NewServer(fmt.Sprintf("link%d", i))
	}
	if params.HostBandwidth > 0 {
		f.hosts = make([]*sim.Server, nodes)
		for i := range f.hosts {
			f.hosts[i] = eng.NewServer(fmt.Sprintf("pci%d", i))
		}
	}
	if reg := eng.Metrics(); reg != nil {
		f.mMsgs = reg.Counter("fabric.messages")
		f.mBytes = reg.Counter("fabric.bytes")
		f.mChunks = reg.Counter("fabric.chunks")
		f.hWait = reg.Histogram("fabric.chunk_queue_wait_ns")
		f.linkBytes = make([]units.Bytes, clos.NumLinks())
		f.track = eng.TraceTrack()
		if f.track != nil {
			for i := 0; i < nodes; i++ {
				f.track.SetThreadName(sim.TidNode+int64(i), fmt.Sprintf("node%d wire", i))
			}
		}
	}
	return f, nil
}

// Nodes reports the number of endpoints.
func (f *Fabric) Nodes() int { return f.clos.Nodes }

// Topology exposes the underlying Clos plan (read-only use).
func (f *Fabric) Topology() *topology.Clos { return f.clos }

// Params returns the fabric's physical parameters.
func (f *Fabric) Params() Params { return f.params }

// Stats reports totals since construction.
func (f *Fabric) Stats() (messages uint64, bytes units.Bytes) {
	return f.messages, f.bytes
}

// LinkUtilization reports the utilization of the given link.
func (f *Fabric) LinkUtilization(id topology.LinkID) float64 {
	return f.links[id].Utilization()
}

// FlushMetrics folds end-of-run link statistics into the engine's registry:
// a histogram of per-link utilization (percent), a histogram of per-link
// payload bytes, and a gauge holding the hottest link's utilization. Only
// links that carried traffic are sampled. Histogram adds and gauge maxima
// commute, so a registry shared by parallel sweep jobs stays deterministic.
// No-op when the engine has no registry attached.
func (f *Fabric) FlushMetrics() {
	reg := f.eng.Metrics()
	if reg == nil || f.linkBytes == nil {
		return
	}
	hUtil := reg.Histogram("fabric.link_util_pct")
	hBytes := reg.Histogram("fabric.link_bytes")
	gMax := reg.Gauge("fabric.max_link_util_pct")
	for id, srv := range f.links {
		if f.linkBytes[id] == 0 {
			continue
		}
		pct := srv.Utilization() * 100
		hUtil.Observe(int64(pct))
		hBytes.Observe(int64(f.linkBytes[id]))
		gMax.SetMax(pct)
	}
}

// HostBus exposes the node's PCI bus server so NIC models can charge
// descriptor and doorbell traffic to it. Nil when the host stage is
// disabled.
func (f *Fabric) HostBus(node int) *sim.Server {
	if f.hosts == nil {
		return nil
	}
	return f.hosts[node]
}

// stage is one FIFO hop of a message's path.
type stage struct {
	srv  *sim.Server
	rate units.Rate
	lat  units.Duration  // latency paid after serialization on this hop
	link topology.LinkID // -1 for host-bus stages (not a fabric link)
}

// path is the materialized hop list for one message, with the index of the
// uplink stage (-1 if the route does not cross spines) so adaptive fabrics
// can re-choose the spine chunk by chunk.
type path struct {
	stages  []stage
	upIdx   int
	srcLeaf int
	dstLeaf int
}

func (f *Fabric) pathFor(src, dst int) path {
	p := f.params
	clos := f.clos
	var pt path
	pt.upIdx = -1
	add := func(id topology.LinkID, srv *sim.Server, rate units.Rate, lat units.Duration) {
		pt.stages = append(pt.stages, stage{srv, rate, lat, id})
	}
	if f.hosts != nil {
		add(-1, f.hosts[src], p.HostBandwidth, p.HostLatency)
	}
	cross := clos.Levels == 2 && clos.LeafOf(src) != clos.LeafOf(dst)
	add(clos.Injection(src), f.links[clos.Injection(src)], p.LinkBandwidth, p.WireLatency+p.ChassisLatency)
	if cross {
		pt.srcLeaf, pt.dstLeaf = clos.LeafOf(src), clos.LeafOf(dst)
		spine := 0
		if !p.Adaptive {
			spine = clos.DestSpine(dst)
		}
		pt.upIdx = len(pt.stages)
		add(clos.Up(pt.srcLeaf, spine), f.links[clos.Up(pt.srcLeaf, spine)], p.LinkBandwidth, p.WireLatency+p.ChassisLatency)
		add(clos.Down(spine, pt.dstLeaf), f.links[clos.Down(spine, pt.dstLeaf)], p.LinkBandwidth, p.WireLatency+p.ChassisLatency)
	}
	add(clos.Ejection(dst), f.links[clos.Ejection(dst)], p.LinkBandwidth, p.WireLatency)
	if f.hosts != nil {
		add(-1, f.hosts[dst], p.HostBandwidth, p.HostLatency)
	}
	return pt
}

// leastLoadedSpine returns the spine whose uplink from the given leaf has
// the earliest busy horizon, ties broken toward the lowest index.
func (f *Fabric) leastLoadedSpine(leaf int) int {
	best, bestAt := 0, units.Forever
	for s := 0; s < f.clos.Spines; s++ {
		if at := f.links[f.clos.Up(leaf, s)].BusyUntil(); at < bestAt {
			best, bestAt = s, at
		}
	}
	return best
}

// Send injects a message of the given size from src to dst at the current
// simulated time and returns a signal that fires when the final byte has
// been delivered into dst's host memory. Zero-size messages (pure control
// traffic) still pay one packet's serialization and the full route latency.
func (f *Fabric) Send(src, dst int, size units.Bytes) *sim.Signal {
	if src == dst {
		panic("fabric: send to self must be handled above the fabric (loopback)")
	}
	if size < 0 {
		panic("fabric: negative message size")
	}
	f.messages++
	f.bytes += size
	f.mMsgs.Inc()
	f.mBytes.Add(uint64(size))
	done := f.eng.NewSignal(fmt.Sprintf("msg %d->%d (%v)", src, dst, size))
	if f.track != nil {
		begin := f.eng.Now()
		name := fmt.Sprintf("msg->%d %v", dst, size)
		done.OnFire(func() {
			f.track.Span(sim.TidNode+int64(src), name, "fabric", begin, f.eng.Now())
		})
	}

	pt := f.pathFor(src, dst)
	sizes := f.chunkSizes(size)
	f.mChunks.Add(uint64(len(sizes)))
	remaining := len(sizes)
	for _, sz := range sizes {
		f.sendChunk(pt, 0, sz, f.eng.Now(), func() {
			remaining--
			if remaining == 0 {
				done.Fire()
			}
		})
	}
	return done
}

// chunkSizes splits a message into MTU-sized chunks (a zero-size message is
// one zero-size chunk: a bare header).
func (f *Fabric) chunkSizes(size units.Bytes) []units.Bytes {
	mtu := f.params.MTU
	n := int((size + mtu - 1) / mtu)
	if n == 0 {
		n = 1
	}
	out := make([]units.Bytes, n)
	for i := range out {
		out[i] = mtu
	}
	out[n-1] = size - units.Bytes(n-1)*mtu
	return out
}

// sendChunk advances one chunk through the path starting at stage i. It is
// lazily scheduled: the chunk claims each hop only when it actually arrives
// there, so cross-traffic interleaves correctly under contention, and
// adaptive spine choice sees true instantaneous load.
func (f *Fabric) sendChunk(pt path, i int, size units.Bytes, ready units.Time, delivered func()) {
	f.eng.At(ready, func() {
		if f.params.Adaptive && i == pt.upIdx {
			spine := f.leastLoadedSpine(pt.srcLeaf)
			pt.stages = append([]stage(nil), pt.stages...)
			pt.stages[i].srv = f.links[f.clos.Up(pt.srcLeaf, spine)]
			pt.stages[i].link = f.clos.Up(pt.srcLeaf, spine)
			pt.stages[i+1].srv = f.links[f.clos.Down(spine, pt.dstLeaf)]
			pt.stages[i+1].link = f.clos.Down(spine, pt.dstLeaf)
		}
		st := pt.stages[i]
		if f.linkBytes != nil && st.link >= 0 {
			f.linkBytes[st.link] += size
			if wait := st.srv.BusyUntil().Sub(ready); wait > 0 {
				f.hWait.Observe(int64(wait / units.Nanosecond))
			} else {
				f.hWait.Observe(0)
			}
		}
		ser := st.rate.TimeFor(size + f.params.PacketOverhead)
		out := st.srv.ServeAt(ready, ser).Add(st.lat)
		if i < len(pt.stages)-1 {
			f.sendChunk(pt, i+1, size, out, delivered)
			return
		}
		f.eng.At(out, delivered)
	})
}

// MinLatency reports the unloaded one-way latency of a size-byte message
// from src to dst on an otherwise idle fabric. It evaluates the same FIFO
// pipeline recurrence the simulation executes, so on an idle fabric the
// simulated delivery time equals this value exactly. It is a convenience
// for calibration and tests, not a simulation.
func (f *Fabric) MinLatency(src, dst int, size units.Bytes) units.Duration {
	pt := f.pathFor(src, dst)
	p := f.params
	sizes := f.chunkSizes(size)
	m := len(pt.stages)
	busy := make([]units.Time, m) // service-completion horizon per stage
	var delivered units.Time
	for _, sz := range sizes {
		var ready units.Time
		for i, st := range pt.stages {
			start := ready
			if busy[i] > start {
				start = busy[i]
			}
			busy[i] = start.Add(st.rate.TimeFor(sz + p.PacketOverhead))
			ready = busy[i].Add(st.lat)
		}
		delivered = ready
	}
	return units.Duration(delivered)
}
