// Package fabric simulates message transport across a folded-Clos network.
//
// Messages are segmented into MTU-sized chunks that cut through the network:
// a chunk begins serializing on hop i+1 as soon as it has fully serialized
// on hop i and crossed the wire/chassis, so long messages pipeline across
// hops while every link remains a FIFO contention point. This chunk-level
// virtual cut-through is the standard fidelity/cost compromise of
// cluster-scale simulators: per-flit modelling would cost thousands of
// events per message for no change in the behaviours this repository
// studies.
//
// The path of a message is:
//
//	host PCI bus -> injection link -> [uplink -> downlink] -> ejection link -> host PCI bus
//
// The PCI-X stage is optional (HostBandwidth == 0 disables it). It models
// the paper's platform constraint that both networks claim ~2 GB/s at the
// physical layer but deliver well under 1 GB/s through a 133 MHz PCI-X
// slot. PCI-X is a half-duplex shared bus, so a node's inbound and outbound
// DMA contend with each other — and, at 2 processes per node, with the
// other rank's traffic.
//
// Routing policy is a per-fabric choice: the InfiniBand model uses the
// deterministic destination-based spine selection a subnet manager's linear
// forwarding tables produce, while the Elan model uses adaptive
// (least-loaded uplink) selection, which QsNetII implements in hardware.
// Adaptive selection happens per chunk at the moment the chunk reaches the
// leaf's uplink stage, mirroring per-packet hardware adaptivity.
package fabric

import (
	"fmt"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
)

// Params defines the physical characteristics of a fabric.
type Params struct {
	// LinkBandwidth is the per-direction data rate of every cable.
	LinkBandwidth units.Rate
	// WireLatency is the propagation delay of one cable.
	WireLatency units.Duration
	// ChassisLatency is the traversal delay of one switch chassis
	// (covering its internal crossbar stages).
	ChassisLatency units.Duration
	// MTU is the chunking granularity for cut-through pipelining.
	MTU units.Bytes
	// PacketOverhead is added to every chunk's serialization time
	// (headers, CRC, encoding overhead).
	PacketOverhead units.Bytes
	// HostBandwidth is the effective DMA rate of each node's PCI-X bus.
	// Zero disables the host stage.
	HostBandwidth units.Rate
	// HostLatency is the DMA startup cost paid per chunk crossing a host
	// bus.
	HostLatency units.Duration
	// Adaptive selects least-loaded-uplink routing instead of
	// deterministic destination routing.
	Adaptive bool
	// HWRetry selects link-level hardware recovery under fault injection
	// (the QsNetII model): corrupted chunks are retried on the same hop
	// after HWRetryDelay and chunks at down links stall until recovery,
	// all invisibly to the host. Without it (the InfiniBand model) an
	// affected chunk kills its message and recovery belongs to the
	// transport's retransmission machinery. Irrelevant until EnableFaults.
	HWRetry bool
	// HWRetryDelay is the link-level retry/poll interval; must be positive
	// when HWRetry is set (a zero delay would retry a down link in an
	// infinite same-instant event loop).
	HWRetryDelay units.Duration
}

// Validate reports configuration errors.
func (p *Params) Validate() error {
	if p.LinkBandwidth <= 0 {
		return fmt.Errorf("fabric: non-positive link bandwidth")
	}
	if p.MTU <= 0 {
		return fmt.Errorf("fabric: non-positive MTU")
	}
	if p.WireLatency < 0 || p.ChassisLatency < 0 || p.PacketOverhead < 0 || p.HostLatency < 0 {
		return fmt.Errorf("fabric: negative latency or overhead")
	}
	if p.HostBandwidth < 0 {
		return fmt.Errorf("fabric: negative host bandwidth")
	}
	if p.HWRetry && p.HWRetryDelay <= 0 {
		return fmt.Errorf("fabric: HWRetry requires a positive HWRetryDelay")
	}
	return nil
}

// Fabric is an instantiated network: a topology plus one FIFO server per
// unidirectional link and one per node PCI bus.
type Fabric struct {
	eng    *sim.Engine
	clos   *topology.Clos
	params Params
	links  []*sim.Server // indexed by topology.LinkID
	hosts  []*sim.Server // per-node half-duplex PCI bus; nil if disabled

	// Sharded-mode wiring (see shard.go). All nil on a serial fabric.
	// Every stage server is owned by exactly one shard engine; chunk hops
	// that cross an ownership boundary travel through sim.Post instead of
	// a local At, and message/fault bookkeeping lives in per-shard locals
	// so no two shards ever write the same word.
	dom     *sim.Sharded
	shardOf []int         // owner shard per node
	nodeEng []*sim.Engine // owner engine per node
	linkEng []*sim.Engine // owner engine per link

	// locals holds the per-shard mutable state: counters, free pools, and
	// the serial fault array. A serial fabric has exactly one entry, so
	// the serial code path is the sharded one with a constant index.
	locals []shardLocal

	// coalesce enables the idle-path fast path: an uncontended message
	// is delivered by one analytically-scheduled event instead of
	// per-chunk cut-through events (see tryCoalesce). Defaults to true
	// exactly when no metrics registry is attached, so instrumented runs
	// always execute the fully-expanded chunk model.
	coalesce bool
	// In-flight message counts per server, keyed the same way stages
	// are: fabric links by LinkID, host buses by node. A window may only
	// form on servers no other in-flight message is using — the lazy
	// chunk model's busy horizon alone cannot reveal traffic that has
	// not reached a stage yet.
	linkUsers []int32
	hostUsers []int32
	// windows holds the active coalescing windows in creation order.
	windows []*window

	// freeWins pools coalescing windows (serial-only machinery).
	freeWins []*window

	// Fault injection (see fault.go). faultsOn is set by EnableFaults;
	// every hot-path fault check is gated on it so clean runs pay one
	// predictable branch. Serial fabrics keep mutable per-link fault
	// state in locals[0].faults, driven by SetLinkFault events; sharded
	// fabrics use the immutable faultTimeline with per-shard cursors
	// (see fault.go).
	faultsOn      bool
	lossRNG       []*rng.Source // per-link loss streams, seeded from faultSeed
	faultSeed     uint64
	faultTimeline [][]FaultStep // per link, time-sorted; sharded mode only

	// probe, when non-nil, receives invariant observations (see probe.go).
	// Serial-only; installing one pins coalescing off.
	probe *Probe

	// Observability (nil-safe no-ops when the engine has no registry).
	mMsgs        *metrics.Counter
	mBytes       *metrics.Counter
	mChunks      *metrics.Counter
	mLost        *metrics.Counter
	mRetried     *metrics.Counter
	mRerouted    *metrics.Counter
	mMsgsDropped *metrics.Counter
	mFaultWin    *metrics.Counter
	hWait        *metrics.Histogram // per-chunk link queueing delay, ns
	track        *metrics.Track
	linkBytes    []units.Bytes // payload bytes per link; nil when no registry
}

// New builds a fabric over nodes endpoints using chassis of the given radix.
func New(eng *sim.Engine, nodes, radix int, params Params) (*Fabric, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	clos, err := topology.NewClos(nodes, radix)
	if err != nil {
		return nil, err
	}
	f := &Fabric{eng: eng, clos: clos, params: params}
	f.locals = make([]shardLocal, 1)
	f.links = make([]*sim.Server, clos.NumLinks())
	for i := range f.links {
		f.links[i] = eng.NewServer(fmt.Sprintf("link%d", i))
	}
	if params.HostBandwidth > 0 {
		f.hosts = make([]*sim.Server, nodes)
		for i := range f.hosts {
			f.hosts[i] = eng.NewServer(fmt.Sprintf("pci%d", i))
		}
		f.hostUsers = make([]int32, nodes)
	}
	f.linkUsers = make([]int32, clos.NumLinks())
	f.coalesce = eng.Metrics() == nil
	if reg := eng.Metrics(); reg != nil {
		f.mMsgs = reg.Counter("fabric.messages")
		f.mBytes = reg.Counter("fabric.bytes")
		f.mChunks = reg.Counter("fabric.chunks")
		f.mLost = reg.Counter("fabric.chunks_lost")
		f.mRetried = reg.Counter("fabric.chunks_hw_retried")
		f.mRerouted = reg.Counter("fabric.chunks_rerouted")
		f.mMsgsDropped = reg.Counter("fabric.messages_dropped")
		f.mFaultWin = reg.Counter("fabric.fault_windows")
		f.hWait = reg.Histogram("fabric.chunk_queue_wait_ns")
		f.linkBytes = make([]units.Bytes, clos.NumLinks())
		f.track = eng.TraceTrack()
		if f.track != nil {
			for i := 0; i < nodes; i++ {
				f.track.SetThreadName(sim.TidNode+int64(i), fmt.Sprintf("node%d wire", i))
			}
		}
	}
	return f, nil
}

// Nodes reports the number of endpoints.
func (f *Fabric) Nodes() int { return f.clos.Nodes }

// Topology exposes the underlying Clos plan (read-only use).
func (f *Fabric) Topology() *topology.Clos { return f.clos }

// Params returns the fabric's physical parameters.
func (f *Fabric) Params() Params { return f.params }

// Stats reports totals since construction.
func (f *Fabric) Stats() (messages uint64, bytes units.Bytes) {
	for i := range f.locals {
		messages += f.locals[i].messages
		bytes += f.locals[i].bytes
	}
	return messages, bytes
}

// LinkUtilization reports the utilization of the given link.
func (f *Fabric) LinkUtilization(id topology.LinkID) float64 {
	return f.links[id].Utilization()
}

// FlushMetrics folds end-of-run link statistics into the engine's registry:
// a histogram of per-link utilization (percent), a histogram of per-link
// payload bytes, and a gauge holding the hottest link's utilization. Only
// links that carried traffic are sampled. Histogram adds and gauge maxima
// commute, so a registry shared by parallel sweep jobs stays deterministic.
// No-op when the engine has no registry attached.
func (f *Fabric) FlushMetrics() {
	reg := f.eng.Metrics()
	if reg == nil || f.linkBytes == nil {
		return
	}
	hUtil := reg.Histogram("fabric.link_util_pct")
	hBytes := reg.Histogram("fabric.link_bytes")
	gMax := reg.Gauge("fabric.max_link_util_pct")
	for id, srv := range f.links {
		if f.linkBytes[id] == 0 {
			continue
		}
		pct := srv.Utilization() * 100
		hUtil.Observe(int64(pct))
		hBytes.Observe(int64(f.linkBytes[id]))
		gMax.SetMax(pct)
	}
}

// HostBus exposes the node's PCI bus server so NIC models can charge
// descriptor and doorbell traffic to it. Nil when the host stage is
// disabled.
func (f *Fabric) HostBus(node int) *sim.Server {
	if f.hosts == nil {
		return nil
	}
	return f.hosts[node]
}

// maxStages bounds a path's hop count: host bus, injection, uplink,
// downlink, ejection, host bus.
const maxStages = 6

// stage is one FIFO hop of a message's path.
type stage struct {
	srv  *sim.Server
	rate units.Rate
	lat  units.Duration  // latency paid after serialization on this hop
	link topology.LinkID // -1 for host-bus stages (not a fabric link)
	host int             // node index for host-bus stages, -1 for links
}

// path is the materialized hop list for one message, with the index of the
// uplink stage (-1 if the route does not cross spines) so adaptive fabrics
// can re-choose the spine chunk by chunk. The hop list is a fixed-size
// array so building a path allocates nothing.
type path struct {
	stages  [maxStages]stage
	n       int
	upIdx   int
	srcLeaf int
	dstLeaf int
}

func (pt *path) add(st stage) {
	pt.stages[pt.n] = st
	pt.n++
}

func (f *Fabric) fillPath(pt *path, src, dst int) {
	p := f.params
	clos := f.clos
	pt.n = 0
	pt.upIdx = -1
	pt.srcLeaf, pt.dstLeaf = 0, 0
	if f.hosts != nil {
		pt.add(stage{f.hosts[src], p.HostBandwidth, p.HostLatency, -1, src})
	}
	cross := clos.Levels == 2 && clos.LeafOf(src) != clos.LeafOf(dst)
	inj := clos.Injection(src)
	pt.add(stage{f.links[inj], p.LinkBandwidth, p.WireLatency + p.ChassisLatency, inj, -1})
	if cross {
		pt.srcLeaf, pt.dstLeaf = clos.LeafOf(src), clos.LeafOf(dst)
		spine := 0
		if !p.Adaptive {
			spine = clos.DestSpine(dst)
		}
		pt.upIdx = pt.n
		up, down := clos.Up(pt.srcLeaf, spine), clos.Down(spine, pt.dstLeaf)
		pt.add(stage{f.links[up], p.LinkBandwidth, p.WireLatency + p.ChassisLatency, up, -1})
		pt.add(stage{f.links[down], p.LinkBandwidth, p.WireLatency + p.ChassisLatency, down, -1})
	}
	ej := clos.Ejection(dst)
	pt.add(stage{f.links[ej], p.LinkBandwidth, p.WireLatency, ej, -1})
	if f.hosts != nil {
		pt.add(stage{f.hosts[dst], p.HostBandwidth, p.HostLatency, -1, dst})
	}
}

// addRefs / releaseRefs maintain the per-server in-flight message counts
// for the whole life of a message (Send to final delivery). For adaptive
// spine-crossing paths the counted up/down stages are the spine-0
// placeholders; that is harmless, because windows — the only readers of
// these counts — never form on spine-crossing paths in adaptive fabrics.
func (f *Fabric) addRefs(pt *path) {
	for i := 0; i < pt.n; i++ {
		st := &pt.stages[i]
		if st.link >= 0 {
			f.linkUsers[st.link]++
		} else {
			f.hostUsers[st.host]++
		}
	}
}

func (f *Fabric) releaseRefs(pt *path) {
	for i := 0; i < pt.n; i++ {
		st := &pt.stages[i]
		if st.link >= 0 {
			f.linkUsers[st.link]--
		} else {
			f.hostUsers[st.host]--
		}
	}
}

// leastLoadedSpine returns the spine whose uplink from the given leaf has
// the earliest busy horizon, ties broken toward the lowest index.
func (f *Fabric) leastLoadedSpine(leaf int) int {
	best, bestAt := 0, units.Forever
	for s := 0; s < f.clos.Spines; s++ {
		if at := f.links[f.clos.Up(leaf, s)].BusyUntil(); at < bestAt {
			best, bestAt = s, at
		}
	}
	return best
}

// SetCoalescing forces the idle-path coalescing fast path on or off,
// overriding the default policy (enabled exactly when the engine has no
// metrics registry). Forcing it on with a registry attached has no
// effect: windows are refused whenever per-chunk instruments are live,
// because a coalesced message records no per-chunk samples. Intended for
// tests and A/B measurement; delivery times are identical either way.
func (f *Fabric) SetCoalescing(on bool) { f.coalesce = on }

// msgName renders a message signal's name (for deadlock reports) with a
// single string allocation instead of fmt.Sprintf's boxing and buffers.
func msgName(src, dst int, size units.Bytes) string {
	var b [40]byte
	s := append(b[:0], "msg "...)
	s = strconv.AppendInt(s, int64(src), 10)
	s = append(s, '-', '>')
	s = strconv.AppendInt(s, int64(dst), 10)
	s = append(s, ' ', '(')
	s = strconv.AppendInt(s, int64(size), 10)
	s = append(s, 'B', ')')
	return string(s)
}

// msgState is the per-message bookkeeping, pooled on the fabric so Send
// allocates no tracking state in steady flow.
type msgState struct {
	f         *Fabric
	pt        path
	remaining int
	size      units.Bytes // payload size, for probe retirement reports
	done      *sim.Signal
	// aborted marks a message killed by an unrecovered fault (see
	// dropMessage): its remaining chunks still drain through the fabric,
	// but done never fires. Under sharding it is owned by the destination
	// shard (set only from posted abortRetire events).
	aborted bool

	// Sharded-mode fields. eng is the destination node's engine — the
	// shard where deliver events run, done fires, and the state retires.
	// finalPending counts chunks that have not yet completed their
	// final-stage serve; it hits zero only if no chunk was dropped, and
	// the step event that zeroes it posts the notify callbacks at the
	// just-computed (maximal, by final-stage FIFO order) delivery time.
	eng          *sim.Engine
	shard        int
	finalPending int
	notify       []deliveryNote
}

func (f *Fabric) getMsg(sh int) *msgState {
	pool := &f.locals[sh].freeMsgs
	if n := len(*pool); n > 0 {
		ms := (*pool)[n-1]
		(*pool)[n-1] = nil
		*pool = (*pool)[:n-1]
		return ms
	}
	return &msgState{f: f}
}

// chunkDelivered retires one chunk; the last one releases the message's
// in-flight refcounts, recycles the state, and fires completion.
func (ms *msgState) chunkDelivered() {
	ms.remaining--
	if ms.remaining > 0 {
		return
	}
	f := ms.f
	if f.dom == nil {
		f.releaseRefs(&ms.pt) // refcounts feed coalescing windows: serial only
	}
	done := ms.done
	aborted := ms.aborted
	size := ms.size
	ms.done = nil
	ms.aborted = false
	ms.eng = nil
	ms.notify = ms.notify[:0]
	f.locals[ms.shard].freeMsgs = append(f.locals[ms.shard].freeMsgs, ms)
	if f.probe != nil {
		f.probeRetired(size, aborted, f.eng.Now())
	}
	if !aborted {
		done.Fire()
	}
}

// chunkState carries one in-flight chunk through its path. It is pooled,
// and the two continuations it schedules (stepFn for the next hop,
// deliverFn for final delivery) are bound once at allocation, so the
// per-chunk-per-hop event loop closes over nothing and allocates
// nothing.
type chunkState struct {
	f     *Fabric
	ms    *msgState
	i     int
	size  units.Bytes
	ready units.Time
	// eng is the engine owning the chunk's current stage. On a serial
	// fabric it is always the fabric engine; under sharding it advances
	// with the chunk, and the step event always runs on it.
	eng *sim.Engine
	// Adaptive per-chunk spine override, chosen when the chunk reaches
	// the uplink stage (nil until then; path stages hold the spine-0
	// placeholder).
	upSrv, downSrv   *sim.Server
	upLink, downLink topology.LinkID
	stepFn           func()
	deliverFn        func()
}

func (f *Fabric) getChunk(eng *sim.Engine, ms *msgState, i int, size units.Bytes, ready units.Time) *chunkState {
	pool := &f.locals[eng.ShardID()].freeChunks
	var cs *chunkState
	if n := len(*pool); n > 0 {
		cs = (*pool)[n-1]
		(*pool)[n-1] = nil
		*pool = (*pool)[:n-1]
	} else {
		cs = &chunkState{f: f}
		cs.stepFn = cs.step
		cs.deliverFn = cs.deliver
	}
	cs.ms, cs.i, cs.size, cs.ready = ms, i, size, ready
	cs.eng = eng
	cs.upSrv, cs.downSrv = nil, nil
	return cs
}

// putChunk retires cs into the pool of the shard it currently runs on.
func (f *Fabric) putChunk(cs *chunkState) {
	pool := &f.locals[cs.eng.ShardID()].freeChunks
	cs.ms = nil
	cs.upSrv, cs.downSrv = nil, nil
	*pool = append(*pool, cs)
}

// step is one hop of the lazy cut-through pipeline: the chunk claims the
// stage it has just arrived at, so cross-traffic interleaves correctly
// under contention and adaptive spine choice sees true instantaneous
// load. It runs as the arrival event at cs.ready.
func (cs *chunkState) step() {
	f := cs.f
	pt := &cs.ms.pt
	i := cs.i
	local := &f.locals[cs.eng.ShardID()]
	if f.params.Adaptive && i == pt.upIdx && cs.upSrv == nil {
		spine, rerouted := f.chooseSpine(cs.eng, pt.srcLeaf, pt.dstLeaf)
		if rerouted {
			local.chunksRerouted++
			f.mRerouted.Inc()
		}
		cs.upLink = f.clos.Up(pt.srcLeaf, spine)
		cs.downLink = f.clos.Down(spine, pt.dstLeaf)
		cs.upSrv = f.links[cs.upLink]
		cs.downSrv = f.links[cs.downLink]
	}
	st := &pt.stages[i]
	srv, link := st.srv, st.link
	if cs.upSrv != nil {
		if i == pt.upIdx {
			srv, link = cs.upSrv, cs.upLink
		} else if i == pt.upIdx+1 {
			srv, link = cs.downSrv, cs.downLink
		}
	}
	lf := f.linkFault(cs.eng, link)
	if lf != nil && lf.Down {
		if f.params.HWRetry {
			// Link-level stall: retry every HWRetryDelay until the link
			// recovers — or, at the uplink stage, until the next attempt's
			// adaptive choice finds a live spine.
			local.chunksRetried++
			f.mRetried.Inc()
			f.probeStalled(link, cs.ready)
			if i == pt.upIdx {
				cs.upSrv, cs.downSrv = nil, nil
			}
			cs.ready = cs.ready.Add(f.params.HWRetryDelay)
			cs.eng.At(cs.ready, cs.stepFn)
			return
		}
		local.chunksLost++
		f.mLost.Inc()
		f.probeLost(link, cs.ready)
		f.dropMessage(cs)
		return
	}
	if f.linkBytes != nil && link >= 0 {
		f.linkBytes[link] += cs.size
		if wait := srv.BusyUntil().Sub(cs.ready); wait > 0 {
			f.hWait.Observe(int64(wait / units.Nanosecond))
		} else {
			f.hWait.Observe(0)
		}
	}
	ser := st.rate.TimeFor(cs.size + f.params.PacketOverhead)
	lat := st.lat
	if lf != nil {
		if lf.BandwidthScale > 0 && lf.BandwidthScale != 1 {
			ser = ser.Scale(1 / lf.BandwidthScale)
		}
		lat += lf.ExtraLatency
	}
	out := srv.ServeAt(cs.ready, ser).Add(lat)
	if lf != nil && lf.LossProb > 0 && f.lossRNG[link].Float64() < lf.LossProb {
		// The chunk serialized (the link time is spent) but arrived
		// corrupt. Hardware-retry fabrics resend it on this hop after the
		// retry delay; otherwise the loss kills the message and recovery
		// is the transport's business.
		local.chunksLost++
		f.mLost.Inc()
		f.probeLost(link, cs.ready)
		if f.params.HWRetry {
			local.chunksRetried++
			f.mRetried.Inc()
			if i == pt.upIdx {
				cs.upSrv, cs.downSrv = nil, nil
			}
			cs.ready = out.Add(f.params.HWRetryDelay)
			cs.eng.At(cs.ready, cs.stepFn)
			return
		}
		f.dropMessage(cs)
		return
	}
	if i < pt.n-1 {
		cs.i = i + 1
		cs.ready = out
		next := f.stageEng(pt, i+1)
		if next != cs.eng {
			// Ownership boundary: hand the chunk to the next stage's shard.
			// The arrival time sits one serve + latency past this event, so
			// the post satisfies the domain lookahead by construction.
			src := cs.eng
			cs.eng = next
			src.Post(next, out, cs.stepFn)
			return
		}
		cs.eng.At(out, cs.stepFn)
		return
	}
	if cs.ms.finalPending > 0 {
		// Sharded mode: the last chunk through the final stage (FIFO, so
		// its out is the message's delivery time) posts the cross-shard
		// delivery notifications. A dropped chunk never reaches here, so
		// finalPending only zeroes for fully-delivered messages.
		cs.ms.finalPending--
		if cs.ms.finalPending == 0 {
			for _, nt := range cs.ms.notify {
				cs.eng.Post(nt.eng, out, nt.fn)
			}
		}
	}
	cs.eng.At(out, cs.deliverFn)
}

// deliver retires the chunk at its final-delivery time.
func (cs *chunkState) deliver() {
	ms := cs.ms
	cs.f.putChunk(cs)
	ms.chunkDelivered()
}

// chunkPlan reports the chunking of a message: n MTU-sized chunks with
// the last one sized last (a zero-size message is one zero-size chunk: a
// bare header). Sizes are derived arithmetically — chunk k is MTU for
// k < n-1 and last for k == n-1 — so no per-message slice is built.
func (f *Fabric) chunkPlan(size units.Bytes) (n int, last units.Bytes) {
	mtu := f.params.MTU
	n = int((size + mtu - 1) / mtu)
	if n == 0 {
		n = 1
	}
	return n, size - units.Bytes(n-1)*mtu
}

// Send injects a message of the given size from src to dst at the current
// simulated time and returns a signal that fires when the final byte has
// been delivered into dst's host memory. Zero-size messages (pure control
// traffic) still pay one packet's serialization and the full route latency.
func (f *Fabric) Send(src, dst int, size units.Bytes) *sim.Signal {
	if src == dst {
		panic("fabric: send to self must be handled above the fabric (loopback)")
	}
	if size < 0 {
		panic("fabric: negative message size")
	}
	srcEng, dstEng := f.NodeEngine(src), f.NodeEngine(dst)
	local := &f.locals[srcEng.ShardID()]
	local.messages++
	local.bytes += size
	f.mMsgs.Inc()
	f.mBytes.Add(uint64(size))
	// The done signal lives on the destination shard: it fires at the
	// deliver event, which always runs there, and its OnFire callbacks
	// are destination-side work. Source-side completion work registers
	// through NotifyDelivered instead.
	done := dstEng.NewSignal(msgName(src, dst, size))
	if f.track != nil {
		begin := f.eng.Now()
		name := fmt.Sprintf("msg->%d %v", dst, size)
		done.OnFire(func() {
			f.track.Span(sim.TidNode+int64(src), name, "fabric", begin, f.eng.Now())
		})
	}

	ms := f.getMsg(srcEng.ShardID())
	ms.done = done
	ms.aborted = false
	ms.eng = dstEng
	ms.shard = dstEng.ShardID()
	f.fillPath(&ms.pt, src, dst)
	n, last := f.chunkPlan(size)
	f.mChunks.Add(uint64(n))
	ms.remaining = n
	ms.size = size
	local.lastMsg, local.lastDone = ms, done

	if f.dom != nil {
		ms.finalPending = n
		ms.notify = ms.notify[:0]
	} else {
		// Any window sharing a server with this message must materialize
		// before the newcomer is scheduled, so its chunks queue behind
		// exactly the traffic the expanded model would have posted. The
		// refcounts feeding window eligibility are serial-only state.
		f.expandTouching(&ms.pt)
		f.addRefs(&ms.pt)

		if f.coalesce && f.linkBytes == nil && f.track == nil &&
			(!f.params.Adaptive || ms.pt.upIdx < 0) &&
			!f.pathFaulted(&ms.pt) &&
			f.tryCoalesce(ms, n, last) {
			return done
		}
	}

	now := srcEng.Now()
	mtu := f.params.MTU
	for k := 0; k < n; k++ {
		sz := mtu
		if k == n-1 {
			sz = last
		}
		cs := f.getChunk(srcEng, ms, 0, sz, now)
		srcEng.At(now, cs.stepFn)
	}
	return done
}

// MinLatency reports the unloaded one-way latency of a size-byte message
// from src to dst on an otherwise idle fabric. It evaluates the same FIFO
// pipeline recurrence the simulation executes, so on an idle fabric the
// simulated delivery time equals this value exactly. It is a convenience
// for calibration and tests, not a simulation.
func (f *Fabric) MinLatency(src, dst int, size units.Bytes) units.Duration {
	var pt path
	f.fillPath(&pt, src, dst)
	p := f.params
	n, last := f.chunkPlan(size)
	var busy [maxStages]units.Time // service-completion horizon per stage
	var delivered units.Time
	for k := 0; k < n; k++ {
		sz := p.MTU
		if k == n-1 {
			sz = last
		}
		var ready units.Time
		for i := 0; i < pt.n; i++ {
			st := &pt.stages[i]
			start := ready
			if busy[i] > start {
				start = busy[i]
			}
			busy[i] = start.Add(st.rate.TimeFor(sz + p.PacketOverhead))
			ready = busy[i].Add(st.lat)
		}
		delivered = ready
	}
	return units.Duration(delivered)
}
