// Package host models a compute node: a fixed set of CPU slots, a shared
// memory bus, and per-slot cache-pollution accounting.
//
// The paper attributes the InfiniBand 2-processes-per-node penalty to two
// host-side mechanisms (Section 4.2.1): host-based MPI processing competes
// with the application for CPU and cache, and two ranks contend for memory
// and I/O resources. This package provides exactly those mechanisms:
//
//   - Compute: a timed computation whose rate degrades while other slots on
//     the same node are simultaneously computing, proportional to the
//     workload's memory intensity (scaled-speedup LAMMPS is bandwidth-
//     sensitive; cache-resident CG is not).
//   - AddOverhead: a debt of extra host time (e.g. cache refill after MPI
//     matching and eager-buffer copies pollute the cache) charged to a
//     slot's next Compute call.
package host

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/units"
)

// Params configures a node.
type Params struct {
	// CPUs is the number of processor slots (the paper's nodes are dual
	// 3.06 GHz Xeons: 2).
	CPUs int
	// MemContention is the fractional slowdown per additional
	// concurrently-computing slot at memory intensity 1.0. A value of 0.3
	// means two fully memory-bound ranks each run at 1/1.3 speed.
	MemContention float64
	// CacheBytes is the per-CPU cache capacity available to application
	// working sets (L2+L3). Application models use it for cache-fit
	// speedup effects; the node itself does not interpret it.
	CacheBytes units.Bytes

	// Noise injects operating-system interference into Compute phases:
	// each slot independently loses NoiseFraction of its compute time in
	// bursts of NoiseBurst mean duration (exponentially distributed
	// spacing, deterministic per seed). Zero fraction disables it. Real
	// measurement studies — including the paper's, which averages four
	// runs per point — live with this; the simulator makes it optional
	// and reproducible.
	NoiseFraction float64
	NoiseBurst    units.Duration
	NoiseSeed     uint64
}

// Validate reports configuration errors.
func (p *Params) Validate() error {
	if p.CPUs < 1 {
		return fmt.Errorf("host: need at least 1 CPU, got %d", p.CPUs)
	}
	if p.MemContention < 0 {
		return fmt.Errorf("host: negative memory contention")
	}
	if p.CacheBytes < 0 {
		return fmt.Errorf("host: negative cache size")
	}
	if p.NoiseFraction < 0 || p.NoiseFraction >= 1 {
		return fmt.Errorf("host: noise fraction %v out of [0,1)", p.NoiseFraction)
	}
	if p.NoiseFraction > 0 && p.NoiseBurst <= 0 {
		return fmt.Errorf("host: noise enabled with non-positive burst")
	}
	return nil
}

// Node is one compute node.
type Node struct {
	eng    *sim.Engine
	id     int
	params Params

	active  int // slots currently inside Compute
	epoch   uint64
	changed *sim.Signal // replaced at every membership change

	debt      []units.Duration // per-slot overhead owed to the next Compute
	busyTotal []units.Duration // per-slot accumulated compute time
	noise     []*rng.Source    // per-slot noise stream (nil when disabled)
}

// NewNode creates a node with the given parameters.
func NewNode(eng *sim.Engine, id int, params Params) (*Node, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := &Node{
		eng:       eng,
		id:        id,
		params:    params,
		changed:   eng.NewSignal(fmt.Sprintf("node%d membership", id)),
		debt:      make([]units.Duration, params.CPUs),
		busyTotal: make([]units.Duration, params.CPUs),
	}
	if params.NoiseFraction > 0 {
		n.noise = make([]*rng.Source, params.CPUs)
		for s := range n.noise {
			n.noise[s] = rng.New(params.NoiseSeed ^ (uint64(id)<<20 + uint64(s) + 0x9e37))
		}
	}
	return n, nil
}

// noiseSteal samples the OS interference stolen from a compute phase of the
// given ideal duration: Poisson-arriving bursts with exponential lengths,
// tuned so the long-run average loss is NoiseFraction of compute time.
func (n *Node) noiseSteal(slot int, work units.Duration) units.Duration {
	if n.noise == nil || work <= 0 {
		return 0
	}
	src := n.noise[slot]
	burst := n.params.NoiseBurst.Seconds()
	rate := n.params.NoiseFraction / burst // events per second of compute
	var stolen float64
	for t := src.ExpFloat64(rate); t < work.Seconds(); t += src.ExpFloat64(rate) {
		stolen += src.ExpFloat64(1 / burst)
	}
	return units.FromSeconds(stolen)
}

// ID reports the node's id.
func (n *Node) ID() int { return n.id }

// Params returns the node's configuration.
func (n *Node) Params() Params { return n.params }

// slowdown reports the current rate divisor for a computation of the given
// memory intensity.
func (n *Node) slowdown(intensity float64) float64 {
	others := n.active - 1
	if others < 0 {
		others = 0
	}
	return 1 + n.params.MemContention*intensity*float64(others)
}

func (n *Node) membershipChanged() {
	n.epoch++
	old := n.changed
	n.changed = n.eng.NewSignal(fmt.Sprintf("node%d membership", n.id))
	old.Fire()
}

// AddOverhead charges extra host time to the slot's next Compute call. Used
// by MPI transports to model cache pollution and deferred protocol work
// that steals application time.
func (n *Node) AddOverhead(slot int, d units.Duration) {
	n.checkSlot(slot)
	if d < 0 {
		panic("host: negative overhead")
	}
	n.debt[slot] += d
}

// PendingOverhead reports the slot's unconsumed overhead debt.
func (n *Node) PendingOverhead(slot int) units.Duration {
	n.checkSlot(slot)
	return n.debt[slot]
}

// ComputeTotal reports the slot's accumulated wall-clock compute time.
func (n *Node) ComputeTotal(slot int) units.Duration {
	n.checkSlot(slot)
	return n.busyTotal[slot]
}

func (n *Node) checkSlot(slot int) {
	if slot < 0 || slot >= n.params.CPUs {
		panic(fmt.Sprintf("host: slot %d out of range [0,%d)", slot, n.params.CPUs))
	}
}

// Compute blocks the calling process for `work` of ideal CPU time plus any
// overhead debt, stretched by memory-bus contention with other slots that
// compute concurrently. intensity in [0,1] scales how sensitive this
// computation is to that contention.
//
// The implementation re-evaluates the rate whenever the set of active slots
// changes, so partial overlaps are accounted exactly: a rank that computes
// alone for the first half of its phase and shares the node for the second
// half pays contention only on the second half.
func (n *Node) Compute(p *sim.Proc, slot int, work units.Duration, intensity float64) {
	n.checkSlot(slot)
	if intensity < 0 || intensity > 1 {
		panic(fmt.Sprintf("host: intensity %v out of [0,1]", intensity))
	}
	work += n.debt[slot]
	n.debt[slot] = 0
	if work <= 0 {
		return
	}
	work += n.noiseSteal(slot, work)
	start := n.eng.Now()
	n.active++
	n.membershipChanged()
	defer func() {
		n.active--
		n.membershipChanged()
		n.busyTotal[slot] += n.eng.Now().Sub(start)
	}()

	remaining := work
	for remaining > 0 {
		slow := n.slowdown(intensity)
		span := remaining.Scale(slow)
		segStart := n.eng.Now()
		deadline := segStart.Add(span)
		epoch0 := n.epoch

		// One timer per segment; stale wakes (from earlier segments'
		// timers) just re-park inside the loop without allocating.
		timer := n.eng.NewSignal("compute timer")
		n.eng.At(deadline, timer.Fire)
		for n.eng.Now() < deadline && n.epoch == epoch0 {
			p.WaitAny(timer, n.changed)
		}

		elapsed := n.eng.Now().Sub(segStart)
		done := elapsed.Scale(1 / slow)
		if done >= remaining || n.eng.Now() >= deadline {
			return
		}
		remaining -= done
	}
}

// Cluster is a convenience collection of identical nodes.
type Cluster struct {
	Nodes []*Node
}

// NewCluster builds n identical nodes on one engine.
func NewCluster(eng *sim.Engine, n int, params Params) (*Cluster, error) {
	return NewClusterOn(func(int) *sim.Engine { return eng }, n, params)
}

// NewClusterOn builds n identical nodes, placing node i on engOf(i) — the
// engine of the shard that owns the node under a partitioned simulation.
// All of a node's slots belong to ranks on that node, so every Compute,
// AddOverhead, and membership signal stays on the owning engine.
func NewClusterOn(engOf func(node int) *sim.Engine, n int, params Params) (*Cluster, error) {
	c := &Cluster{Nodes: make([]*Node, n)}
	for i := range c.Nodes {
		node, err := NewNode(engOf(i), i, params)
		if err != nil {
			return nil, err
		}
		c.Nodes[i] = node
	}
	return c, nil
}
