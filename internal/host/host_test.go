package host

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

func params2() Params {
	return Params{CPUs: 2, MemContention: 0.3, CacheBytes: units.Bytes(1536 * units.KiB)}
}

func mustNode(t *testing.T, eng *sim.Engine, p Params) *Node {
	t.Helper()
	n, err := NewNode(eng, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestComputeAloneRunsAtFullRate(t *testing.T) {
	eng := sim.NewEngine()
	n := mustNode(t, eng, params2())
	var done units.Time
	eng.Spawn("r0", func(p *sim.Proc) {
		n.Compute(p, 0, 10*units.Microsecond, 1.0)
		done = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done != units.Time(10*units.Microsecond) {
		t.Fatalf("alone compute took %v, want 10us", done)
	}
}

func TestFullOverlapContention(t *testing.T) {
	eng := sim.NewEngine()
	n := mustNode(t, eng, params2())
	var d0, d1 units.Time
	eng.Spawn("r0", func(p *sim.Proc) {
		n.Compute(p, 0, 10*units.Microsecond, 1.0)
		d0 = p.Now()
	})
	eng.Spawn("r1", func(p *sim.Proc) {
		n.Compute(p, 1, 10*units.Microsecond, 1.0)
		d1 = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Both fully overlapped: each runs at 1/1.3 rate => 13us.
	want := units.Time(13 * units.Microsecond)
	tol := units.Time(10 * units.Nanosecond)
	for _, d := range []units.Time{d0, d1} {
		if d < want-tol || d > want+tol {
			t.Fatalf("contended compute took %v, want ~%v", d, want)
		}
	}
}

func TestZeroIntensityIgnoresContention(t *testing.T) {
	eng := sim.NewEngine()
	n := mustNode(t, eng, params2())
	var d0 units.Time
	eng.Spawn("r0", func(p *sim.Proc) {
		n.Compute(p, 0, 10*units.Microsecond, 0)
		d0 = p.Now()
	})
	eng.Spawn("r1", func(p *sim.Proc) {
		n.Compute(p, 1, 10*units.Microsecond, 0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d0 != units.Time(10*units.Microsecond) {
		t.Fatalf("cache-resident compute took %v, want 10us", d0)
	}
}

func TestPartialOverlapChargedExactly(t *testing.T) {
	eng := sim.NewEngine()
	n := mustNode(t, eng, params2())
	var d0 units.Time
	// r0 computes 20us of work; r1 joins at t=10us with a long job.
	eng.Spawn("r0", func(p *sim.Proc) {
		n.Compute(p, 0, 20*units.Microsecond, 1.0)
		d0 = p.Now()
	})
	eng.Spawn("r1", func(p *sim.Proc) {
		p.Sleep(10 * units.Microsecond)
		n.Compute(p, 1, 100*units.Microsecond, 1.0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// r0: 10us alone (10us of work done) + remaining 10us of work at 1.3x
	// stretch = 13us more. Total 23us.
	want := 23 * units.Microsecond
	got := units.Duration(d0)
	if math.Abs(got.Seconds()-want.Seconds()) > 20e-9 {
		t.Fatalf("partial overlap: r0 finished at %v, want ~%v", got, want)
	}
}

func TestOverheadDebtConsumedByNextCompute(t *testing.T) {
	eng := sim.NewEngine()
	n := mustNode(t, eng, params2())
	n.AddOverhead(0, 5*units.Microsecond)
	if n.PendingOverhead(0) != 5*units.Microsecond {
		t.Fatal("debt not recorded")
	}
	var d units.Time
	eng.Spawn("r0", func(p *sim.Proc) {
		n.Compute(p, 0, 10*units.Microsecond, 0)
		d = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d != units.Time(15*units.Microsecond) {
		t.Fatalf("compute with debt took %v, want 15us", d)
	}
	if n.PendingOverhead(0) != 0 {
		t.Fatal("debt not cleared")
	}
}

func TestComputeTotalAccounting(t *testing.T) {
	eng := sim.NewEngine()
	n := mustNode(t, eng, params2())
	eng.Spawn("r0", func(p *sim.Proc) {
		n.Compute(p, 0, 4*units.Microsecond, 0)
		p.Sleep(10 * units.Microsecond)
		n.Compute(p, 0, 6*units.Microsecond, 0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.ComputeTotal(0); got != 10*units.Microsecond {
		t.Fatalf("ComputeTotal = %v, want 10us", got)
	}
}

func TestZeroWorkIsInstant(t *testing.T) {
	eng := sim.NewEngine()
	n := mustNode(t, eng, params2())
	var d units.Time
	eng.Spawn("r0", func(p *sim.Proc) {
		n.Compute(p, 0, 0, 1.0)
		d = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("zero work took %v", d)
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewNode(eng, 0, Params{CPUs: 0}); err == nil {
		t.Fatal("0 CPUs should error")
	}
	if _, err := NewNode(eng, 0, Params{CPUs: 1, MemContention: -1}); err == nil {
		t.Fatal("negative contention should error")
	}
}

func TestBadSlotPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := mustNode(t, eng, params2())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	n.AddOverhead(2, units.Microsecond)
}

func TestCluster(t *testing.T) {
	eng := sim.NewEngine()
	c, err := NewCluster(eng, 4, params2())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 4 {
		t.Fatalf("%d nodes", len(c.Nodes))
	}
	for i, n := range c.Nodes {
		if n.ID() != i {
			t.Fatalf("node %d has id %d", i, n.ID())
		}
	}
}

// Three-way contention on a 4-CPU node: rate divisor 1 + 0.3*2 = 1.6.
func TestMultiWayContention(t *testing.T) {
	eng := sim.NewEngine()
	p := Params{CPUs: 4, MemContention: 0.3}
	n := mustNode(t, eng, p)
	finish := make([]units.Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		eng.Spawn("r", func(pr *sim.Proc) {
			n.Compute(pr, i, 10*units.Microsecond, 1.0)
			finish[i] = pr.Now()
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := 16 * units.Microsecond
	for i, f := range finish {
		if math.Abs(units.Duration(f).Seconds()-want.Seconds()) > 30e-9 {
			t.Fatalf("rank %d finished at %v, want ~%v", i, f, want)
		}
	}
}

func TestNoiseStealsExpectedFraction(t *testing.T) {
	eng := sim.NewEngine()
	p := params2()
	p.NoiseFraction = 0.05
	p.NoiseBurst = 50 * units.Microsecond
	p.NoiseSeed = 7
	n := mustNode(t, eng, p)
	const work = 500 * units.Millisecond
	var elapsed units.Duration
	eng.Spawn("r0", func(pr *sim.Proc) {
		start := pr.Now()
		n.Compute(pr, 0, work, 0)
		elapsed = pr.Now().Sub(start)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	overhead := float64(elapsed-work) / float64(work)
	if overhead < 0.02 || overhead > 0.10 {
		t.Fatalf("noise overhead %.3f, want ~0.05", overhead)
	}
}

func TestNoiseDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) units.Duration {
		eng := sim.NewEngine()
		p := params2()
		p.NoiseFraction = 0.03
		p.NoiseBurst = 20 * units.Microsecond
		p.NoiseSeed = seed
		n := mustNode(t, eng, p)
		var elapsed units.Duration
		eng.Spawn("r0", func(pr *sim.Proc) {
			n.Compute(pr, 0, 50*units.Millisecond, 0)
			elapsed = units.Duration(pr.Now())
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	if run(1) != run(1) {
		t.Fatal("same seed should reproduce exactly")
	}
	if run(1) == run(2) {
		t.Fatal("different seeds should differ")
	}
}

func TestNoiseValidation(t *testing.T) {
	eng := sim.NewEngine()
	p := params2()
	p.NoiseFraction = 1.5
	if _, err := NewNode(eng, 0, p); err == nil {
		t.Fatal("fraction >= 1 should error")
	}
	p.NoiseFraction = 0.1
	p.NoiseBurst = 0
	if _, err := NewNode(eng, 0, p); err == nil {
		t.Fatal("zero burst with noise should error")
	}
}
