package extrapolate

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactGeometricRecovery(t *testing.T) {
	// T(P) = 10 * 1.05^log2(P): each doubling costs 5%.
	procs := []int{1, 2, 4, 8, 16, 32}
	times := make([]float64, len(procs))
	for i, p := range procs {
		times[i] = 10 * math.Pow(1.05, math.Log2(float64(p)))
	}
	f, err := FitLogTime(procs, times)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.PerDoublingFactor()-1.05) > 1e-9 {
		t.Fatalf("per-doubling = %v, want 1.05", f.PerDoublingFactor())
	}
	if math.Abs(f.R2-1) > 1e-9 {
		t.Fatalf("R2 = %v", f.R2)
	}
	// Extrapolate to 1024: T = 10*1.05^10; E = T(1)/T(1024).
	wantT := 10 * math.Pow(1.05, 10)
	if math.Abs(f.TimeAt(1024)-wantT) > 1e-6 {
		t.Fatalf("TimeAt(1024) = %v, want %v", f.TimeAt(1024), wantT)
	}
	wantE := 100 / math.Pow(1.05, 10)
	if math.Abs(f.EfficiencyAt(1, 1024)-wantE) > 1e-6 {
		t.Fatalf("EfficiencyAt = %v, want %v", f.EfficiencyAt(1, 1024), wantE)
	}
}

func TestNoisyFitReasonable(t *testing.T) {
	procs := []int{1, 2, 4, 8, 16, 32}
	times := []float64{10, 10.6, 11.0, 11.8, 12.2, 13.1}
	f, err := FitLogTime(procs, times)
	if err != nil {
		t.Fatal(err)
	}
	if f.PerDoublingFactor() < 1.02 || f.PerDoublingFactor() > 1.10 {
		t.Fatalf("per-doubling = %v", f.PerDoublingFactor())
	}
	if f.R2 < 0.95 {
		t.Fatalf("R2 = %v for near-geometric data", f.R2)
	}
}

func TestErrors(t *testing.T) {
	if _, err := FitLogTime([]int{1}, []float64{1}); err == nil {
		t.Fatal("single point should error")
	}
	if _, err := FitLogTime([]int{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := FitLogTime([]int{1, 2}, []float64{1, -1}); err == nil {
		t.Fatal("negative time should error")
	}
	if _, err := FitLogTime([]int{4, 4}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate x should error")
	}
}

// Property: the fit interpolates any two-point dataset exactly.
func TestTwoPointInterpolationProperty(t *testing.T) {
	f := func(t1Raw, t2Raw uint16) bool {
		t1 := float64(t1Raw%1000) + 1
		t2 := float64(t2Raw%1000) + 1
		fit, err := FitLogTime([]int{2, 16}, []float64{t1, t2})
		if err != nil {
			return false
		}
		return math.Abs(fit.TimeAt(2)-t1) < 1e-9*t1+1e-9 &&
			math.Abs(fit.TimeAt(16)-t2) < 1e-9*t2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: extrapolated efficiency is monotone decreasing in P when the
// slope is positive.
func TestEfficiencyMonotoneProperty(t *testing.T) {
	fit, err := FitLogTime([]int{1, 32}, []float64{10, 14})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for p := 1; p <= 8192; p *= 2 {
		e := fit.EfficiencyAt(1, p)
		if e > prev {
			t.Fatalf("efficiency increased at P=%d", p)
		}
		prev = e
	}
}
