// Package extrapolate fits scaling trends to small-system measurements and
// projects them to large systems — the method behind the paper's Figure 8,
// which extends the 32-node LAMMPS membrane results to 8192 processors
// "assuming the scaling trends continue exactly as they did for the first
// 32 nodes".
//
// The model is geometric-per-doubling: ln T(P) = a + b*log2(P), i.e. each
// doubling of the process count multiplies the (scaled-problem) execution
// time by a constant factor e^b. This is the simplest trend for which
// "continuing exactly" is well defined, and on the measured range it fits
// the scaled-speedup series closely.
package extrapolate

import (
	"fmt"
	"math"
)

// Fit is a least-squares fit of ln(time) against log2(procs).
type Fit struct {
	InterceptLn float64 // ln T at log2(P) = 0
	Slope       float64 // d ln T / d log2 P
	R2          float64 // goodness of fit
	N           int     // points fitted
}

// FitLogTime fits the model to measured (procs, time) points. At least two
// distinct process counts are required.
func FitLogTime(procs []int, times []float64) (*Fit, error) {
	if len(procs) != len(times) {
		return nil, fmt.Errorf("extrapolate: %d procs vs %d times", len(procs), len(times))
	}
	if len(procs) < 2 {
		return nil, fmt.Errorf("extrapolate: need at least 2 points")
	}
	var xs, ys []float64
	for i := range procs {
		if procs[i] < 1 || times[i] <= 0 {
			return nil, fmt.Errorf("extrapolate: invalid point (%d, %g)", procs[i], times[i])
		}
		xs = append(xs, math.Log2(float64(procs[i])))
		ys = append(ys, math.Log(times[i]))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return nil, fmt.Errorf("extrapolate: all points at the same process count")
	}
	f := &Fit{N: len(xs)}
	f.Slope = (n*sxy - sx*sy) / den
	f.InterceptLn = (sy - f.Slope*sx) / n
	// R^2.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := f.InterceptLn + f.Slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	if ssTot == 0 {
		f.R2 = 1
	} else {
		f.R2 = 1 - ssRes/ssTot
	}
	return f, nil
}

// TimeAt projects the fitted time at p processes.
func (f *Fit) TimeAt(p int) float64 {
	return math.Exp(f.InterceptLn + f.Slope*math.Log2(float64(p)))
}

// EfficiencyAt projects scaled-problem efficiency (percent) at p processes
// relative to pRef.
func (f *Fit) EfficiencyAt(pRef, p int) float64 {
	return f.TimeAt(pRef) / f.TimeAt(p) * 100
}

// PerDoublingFactor reports the fitted multiplicative time growth per
// process-count doubling (1.0 = perfect scaling).
func (f *Fit) PerDoublingFactor() float64 {
	return math.Exp(f.Slope)
}
