// Package loggp extracts LogGP parameters (Culler et al.; Alexandrov et
// al.) from the simulated interconnects: L (wire latency), o (host
// overhead per message), g (gap between messages — the reciprocal of
// message rate), and G (gap per byte — the reciprocal of bandwidth).
//
// The paper's Section 7 calls for "techniques to study the exact source of
// differences in scaling efficiency"; its reference [15] (Martin et al.)
// does exactly this with LogGP-style decomposition. This package applies
// the standard extraction micro-benchmarks to both simulated networks, so
// the architectural contrasts of Section 3 become four numbers each.
package loggp

import (
	"fmt"

	"repro/internal/microbench"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/units"
)

// Params is one network's LogGP characterization.
type Params struct {
	Network platform.Network
	// L is the end-to-end latency not attributable to host overhead: time
	// in NICs, switches, and wires.
	L units.Duration
	// O is the host (CPU) overhead to initiate a send.
	O units.Duration
	// Gap is the minimum interval between consecutive small messages
	// (1/message-rate under streaming).
	Gap units.Duration
	// G is the per-byte gap (1/asymptotic-bandwidth).
	G units.Duration
}

// String renders the parameter set.
func (p *Params) String() string {
	return fmt.Sprintf("%s: L=%v o=%v g=%v G=%.3fns/B (%.0f MB/s)",
		p.Network.Short(), p.L, p.O, p.Gap,
		p.G.Nanoseconds(), 1e3/p.G.Nanoseconds())
}

// PredictLatency evaluates the LogGP one-way time for a size-byte message:
// L + 2o + (size-1)G.
func (p *Params) PredictLatency(size units.Bytes) units.Duration {
	d := p.L + 2*p.O
	if size > 1 {
		d += units.Duration(size-1) * p.G
	}
	return d
}

// Measure extracts the parameters by running the standard micro-benchmarks
// on a two-node instance of the network.
func Measure(network platform.Network) (*Params, error) {
	out := &Params{Network: network}

	// o: the time an Isend occupies the host before returning, averaged
	// over a small burst (kept under the eager credit ring).
	o, err := measureOverhead(network)
	if err != nil {
		return nil, err
	}
	out.O = o

	// Round trip: 0-byte ping-pong gives L + 2o per direction.
	pp, err := microbench.PingPong(network, []units.Bytes{0}, 30)
	if err != nil {
		return nil, err
	}
	out.L = pp[0].Latency - 2*o
	if out.L < 0 {
		out.L = 0
	}

	// g: streaming 1-byte messages; G: streaming 1 MiB messages.
	st, err := microbench.Streaming(network, []units.Bytes{1, 1 * units.MiB}, 16, 10)
	if err != nil {
		return nil, err
	}
	out.Gap = st[0].Bandwidth.TimeFor(1)
	out.G = units.Duration(float64(st[1].Bandwidth.TimeFor(1*units.MiB)) / float64(1*units.MiB))
	return out, nil
}

// measureOverhead times a burst of nonblocking sends at the sender.
func measureOverhead(network platform.Network) (units.Duration, error) {
	m, err := platform.New(platform.Options{Network: network, Ranks: 2, PPN: 1})
	if err != nil {
		return 0, err
	}
	const burst = 16
	var o units.Duration
	_, err = m.Run(func(r *mpi.Rank) {
		if r.ID() == 1 {
			for i := 0; i < burst; i++ {
				r.Recv(0, 0)
			}
			return
		}
		reqs := make([]*mpi.Request, burst)
		start := r.Now()
		for i := range reqs {
			reqs[i] = r.Isend(1, 0, 0)
		}
		o = r.Now().Sub(start) / burst
		r.Waitall(reqs...)
	})
	if err != nil {
		return 0, err
	}
	return o, nil
}
