package loggp

import (
	"strings"
	"testing"

	"repro/internal/microbench"
	"repro/internal/platform"
	"repro/internal/units"
)

func TestMeasureBothNetworks(t *testing.T) {
	params := map[platform.Network]*Params{}
	for _, net := range platform.Networks {
		p, err := Measure(net)
		if err != nil {
			t.Fatal(err)
		}
		if p.L <= 0 || p.O <= 0 || p.Gap <= 0 || p.G <= 0 {
			t.Fatalf("%v: non-positive parameter: %+v", net, p)
		}
		if !strings.Contains(p.String(), net.Short()) {
			t.Fatal("String missing network")
		}
		params[net] = p
		t.Log(p)
	}
	el, ib := params[platform.QuadricsElan4], params[platform.InfiniBand4X]
	// The architectural contrasts as numbers:
	if ib.L <= el.L {
		t.Errorf("IB L (%v) should exceed Elan L (%v): slower NIC pipeline", ib.L, el.L)
	}
	if ib.Gap <= el.Gap {
		t.Errorf("IB gap (%v) should exceed Elan gap (%v): lower message rate", ib.Gap, el.Gap)
	}
	if ratio := float64(ib.Gap) / float64(el.Gap); ratio < 3 {
		t.Errorf("gap ratio %.1f, want >= 3 (streaming anchor)", ratio)
	}
	// G similar: both PCI-X bound.
	if gr := float64(ib.G) / float64(el.G); gr < 0.8 || gr > 1.4 {
		t.Errorf("G ratio %.2f should be near 1 (both PCI-X bound)", gr)
	}
}

func TestPredictionTracksSimulation(t *testing.T) {
	// LogGP is a crude model; predictions should land within 2x of
	// simulated ping-pong for latency-dominated sizes.
	for _, net := range platform.Networks {
		p, err := Measure(net)
		if err != nil {
			t.Fatal(err)
		}
		sizes := []units.Bytes{0, 256, 4 * units.KiB}
		pp, err := microbench.PingPong(net, sizes, 10)
		if err != nil {
			t.Fatal(err)
		}
		for i, size := range sizes {
			pred := p.PredictLatency(size)
			meas := pp[i].Latency
			ratio := float64(pred) / float64(meas)
			t.Logf("%s %v: predicted %v, simulated %v", net.Short(), size, pred, meas)
			if ratio < 0.4 || ratio > 2.0 {
				t.Errorf("%v size %v: prediction %v vs simulation %v out of 2x band",
					net, size, pred, meas)
			}
		}
	}
}
