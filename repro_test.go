package repro_test

import (
	"strings"
	"testing"

	"repro"
)

func TestNewClusterAndRun(t *testing.T) {
	for _, network := range repro.Networks {
		c, err := repro.NewCluster(network, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		if c.Network() != network {
			t.Fatalf("network = %v", c.Network())
		}
		res, err := c.Run(func(r *repro.Rank) {
			r.Barrier()
			next := (r.ID() + 1) % r.Size()
			prev := (r.ID() + r.Size() - 1) % r.Size()
			st := r.Sendrecv(next, 0, 4*repro.KiB, prev, 0)
			if st.Src != prev {
				t.Errorf("src = %d, want %d", st.Src, prev)
			}
			r.Allreduce(64)
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Elapsed <= 0 {
			t.Fatal("no elapsed time")
		}
	}
}

func TestPublicMicrobenchmarks(t *testing.T) {
	pts, err := repro.PingPong(repro.QuadricsElan4, []repro.Bytes{0, 1024}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Latency <= 0 {
		t.Fatalf("points = %+v", pts)
	}
	st, err := repro.Streaming(repro.InfiniBand4X, []repro.Bytes{1024}, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st[0].Bandwidth <= 0 {
		t.Fatal("no streaming bandwidth")
	}
	be, err := repro.BEff(repro.QuadricsElan4, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if be.PerProcess <= 0 {
		t.Fatal("no b_eff")
	}
}

func TestExperimentListing(t *testing.T) {
	exps := repro.Experiments()
	if len(exps) < 17 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	out, err := repro.RunExperiment("table2", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "$995") {
		t.Fatalf("table2 output missing the paper's HCA price:\n%s", out)
	}
	if _, err := repro.RunExperiment("bogus", true); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestPublicCostModel(t *testing.T) {
	p := repro.Prices()
	elan, err := repro.PriceElan(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := repro.PriceIB(p, 32, 96)
	if err != nil {
		t.Fatal(err)
	}
	combo, err := repro.PriceIBCombo(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	if elan.PerPort() <= 0 || ib.PerPort() <= 0 {
		t.Fatal("non-positive prices")
	}
	if combo.NetworkTotal() > ib.NetworkTotal() {
		t.Fatal("combo should not exceed the 96-port design at 32 nodes")
	}
}

func TestDefaultSizesSweep(t *testing.T) {
	sizes := repro.DefaultSizes()
	if sizes[0] != 0 || sizes[len(sizes)-1] != 4*repro.MiB {
		t.Fatalf("size sweep = %v...%v", sizes[0], sizes[len(sizes)-1])
	}
}

func TestPublicProfileAndTrace(t *testing.T) {
	c, err := repro.NewCluster(repro.QuadricsElan4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableTrace(64)
	_, err = c.Run(func(r *repro.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, 4*repro.KiB)
		} else {
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Profile()
	if p.Messages == 0 || p.Bytes != 4*repro.KiB {
		t.Fatalf("profile: %+v", p)
	}
	events, total := c.Trace()
	if total == 0 || len(events) == 0 {
		t.Fatal("no trace")
	}
	if out := repro.FormatTrace(events); !strings.Contains(out, "send-post") {
		t.Fatalf("trace format:\n%s", out)
	}
}
