package repro_test

import (
	"fmt"

	"repro"
)

// The simulator is deterministic, so examples have exact outputs.

// Build a two-node cluster on each interconnect and compare 0-byte MPI
// latency — the paper's headline micro-benchmark.
func Example_latency() {
	for _, network := range repro.Networks {
		pts, err := repro.PingPong(network, []repro.Bytes{0}, 20)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %.2f us\n", network, pts[0].Latency.Microseconds())
	}
	// Output:
	// Quadrics Elan-4: 2.81 us
	// 4X InfiniBand: 6.25 us
}

// Run a hand-written MPI program: a four-rank ring exchange with a final
// reduction.
func Example_ringProgram() {
	cluster, err := repro.NewCluster(repro.QuadricsElan4, 4, 1)
	if err != nil {
		panic(err)
	}
	res, err := cluster.Run(func(r *repro.Rank) {
		next := (r.ID() + 1) % r.Size()
		prev := (r.ID() + r.Size() - 1) % r.Size()
		st := r.Sendrecv(next, 0, 4*repro.KiB, prev, 0)
		if st.Src != prev {
			panic("wrong source")
		}
		r.Allreduce(8)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("ranks finished:", len(res.RankElapsed))
	// Output:
	// ranks finished: 4
}

// Split the world communicator into row groups, as NPB CG does.
func Example_communicators() {
	cluster, err := repro.NewCluster(repro.InfiniBand4X, 4, 1)
	if err != nil {
		panic(err)
	}
	sizes := make([]int, 4)
	_, err = cluster.Run(func(r *repro.Rank) {
		row := r.CommWorld().Split(r.ID()/2, r.ID()%2)
		sizes[r.ID()] = row.Size()
		row.Barrier()
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("row sizes:", sizes)
	// Output:
	// row sizes: [2 2 2 2]
}

// Price the interconnects for a 1024-node system (Figure 7's headline).
func Example_cost() {
	prices := repro.Prices()
	elan, _ := repro.PriceElan(prices, 1024)
	combo, _ := repro.PriceIBCombo(prices, 1024)
	fmt.Printf("Elan-4: $%.0f/port, 24/288 IB: $%.0f/port\n",
		float64(elan.PerPort()), float64(combo.PerPort()))
	// Output:
	// Elan-4: $4683/port, 24/288 IB: $2363/port
}
