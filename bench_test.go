package repro_test

// One benchmark per table and figure of the paper, as required by the
// benchmark-harness deliverable: `go test -bench=.` regenerates every
// artifact (in Quick mode, so the suite completes in tens of seconds; run
// `go run ./cmd/repro -exp all` for full fidelity).

import (
	"runtime"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/microbench"
	"repro/internal/platform"
	"repro/internal/units"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(experiments.Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Platform(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkTable2IBPrices(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable3ElanPrices(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkFig1aLatency(b *testing.B)       { benchExperiment(b, "fig1a") }
func BenchmarkFig1bBandwidth(b *testing.B)     { benchExperiment(b, "fig1b") }
func BenchmarkFig1cRatio(b *testing.B)         { benchExperiment(b, "fig1c") }
func BenchmarkFig1dBEff(b *testing.B)          { benchExperiment(b, "fig1d") }
func BenchmarkFig2LammpsLJS(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkFig3LammpsMembrane(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig4Sweep3D(b *testing.B)        { benchExperiment(b, "fig4") }
func BenchmarkFig5SweepInputs(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig6NASCG(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig7Cost(b *testing.B)           { benchExperiment(b, "fig7") }
func BenchmarkFig8Extrapolation(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkXScaleDirect(b *testing.B)       { benchExperiment(b, "xscale") }
func BenchmarkXRegCache(b *testing.B)          { benchExperiment(b, "xreg") }
func BenchmarkXOverlap(b *testing.B)           { benchExperiment(b, "xoverlap") }
func BenchmarkXLogGP(b *testing.B)             { benchExperiment(b, "xloggp") }
func BenchmarkXAttribution(b *testing.B)       { benchExperiment(b, "xattrib") }
func BenchmarkXEagerThreshold(b *testing.B)    { benchExperiment(b, "xeager") }
func BenchmarkXNoise(b *testing.B)             { benchExperiment(b, "xnoise") }
func BenchmarkXRouting(b *testing.B)           { benchExperiment(b, "xroute") }
func BenchmarkXRGetRendezvous(b *testing.B)    { benchExperiment(b, "xrget") }

// BenchmarkRunnerSpeedup pins the parallel-sweep trajectory: the same
// LAMMPS sweep (fig3: 12 independent sims in quick mode) executed serially
// and on a full worker pool. On a single-CPU host the two are equal; on
// multi-core hardware the ratio is the runner's speedup. Output stays
// byte-identical either way (see TestParallelDeterminism).
func benchmarkRunnerSweep(b *testing.B, jobs int) {
	b.Helper()
	e, err := experiments.Get("fig3")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(experiments.Options{Quick: true, Jobs: jobs}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunnerSpeedupSerial(b *testing.B) { benchmarkRunnerSweep(b, 1) }
func BenchmarkRunnerSpeedupParallel(b *testing.B) {
	benchmarkRunnerSweep(b, runtime.GOMAXPROCS(0))
}

// Raw micro-benchmark throughput of the simulator itself: how fast the
// discrete-event engine pushes MPI traffic. Useful when changing the sim
// kernel.
func BenchmarkSimulatorPingPong8KiB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := microbench.PingPong(platform.QuadricsElan4,
			[]units.Bytes{8 * units.KiB}, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorBarrier64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := repro.NewCluster(repro.QuadricsElan4, 64, 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(func(r *repro.Rank) {
			for k := 0; k < 10; k++ {
				r.Barrier()
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
}
