#!/usr/bin/env bash
# serve-smoke: end-to-end smoke test of the simd job server.
#
# Starts simd on an ephemeral port with a scratch cache, POSTs a quick
# fig1a job, follows its SSE stream to completion, asserts the second
# identical POST is served from the cache with the same checksum, and
# checks SIGTERM drains cleanly (exit 0). Needs only curl + coreutils.
set -euo pipefail

GO=${GO:-go}
dir=$(mktemp -d)
simd_pid=""
cleanup() {
	[ -n "$simd_pid" ] && kill "$simd_pid" 2>/dev/null || true
	[ -n "$simd_pid" ] && wait "$simd_pid" 2>/dev/null || true
	rm -rf "$dir"
}
trap cleanup EXIT

fail() {
	echo "serve-smoke: $*" >&2
	echo "--- simd stderr ---" >&2
	cat "$dir/stderr" >&2 || true
	exit 1
}

$GO build -o "$dir/simd" ./cmd/simd
"$dir/simd" -addr 127.0.0.1:0 -cache "$dir/cache" >"$dir/stdout" 2>"$dir/stderr" &
simd_pid=$!

base=""
for _ in $(seq 1 100); do
	base=$(sed -n 's#^listening on ##p' "$dir/stdout" 2>/dev/null | head -1)
	[ -n "$base" ] && break
	kill -0 "$simd_pid" 2>/dev/null || fail "simd exited during startup"
	sleep 0.1
done
[ -n "$base" ] || fail "simd did not report its address"

curl -fsS "$base/v1/experiments" | grep -q '"fig1a"' ||
	fail "catalog does not list fig1a"

resp=$(curl -fsS -X POST "$base/v1/jobs" -d '{"experiment":"fig1a","quick":true}') ||
	fail "first POST failed"
echo "$resp" | grep -Eq '"cache": *"miss"' || fail "first POST not a miss: $resp"
id=$(echo "$resp" | grep -Eo '"id": *"[^"]+"' | head -1 | grep -Eo 'job-[0-9]+')
[ -n "$id" ] || fail "no job id in: $resp"

# The SSE stream closes at the terminal event; curl -N returning is
# itself the completion signal.
curl -fsSN --max-time 120 "$base/v1/jobs/$id/events" >"$dir/events" ||
	fail "SSE stream failed"
grep -q 'event: progress' "$dir/events" || fail "no progress events streamed"
grep -Eq '"state":"done"' "$dir/events" || fail "stream ended without done status"

status=$(curl -fsS "$base/v1/jobs/$id") || fail "status GET failed"
sum1=$(echo "$status" | grep -Eo '"checksum": *"[0-9a-f]{64}"' | grep -Eo '[0-9a-f]{64}')
[ -n "$sum1" ] || fail "finished job has no checksum: $status"

resp2=$(curl -fsS -X POST "$base/v1/jobs" -d '{"experiment":"fig1a","quick":true}') ||
	fail "second POST failed"
echo "$resp2" | grep -Eq '"cache": *"hit"' || fail "second POST not a cache hit: $resp2"
echo "$resp2" | grep -q "$sum1" || fail "cache hit changed the checksum: $resp2"

curl -fsS "$base/v1/jobs/$id/result" -o "$dir/artifact.json" -D "$dir/result-headers" ||
	fail "result GET failed"
grep -q "$sum1" "$dir/artifact.json" || fail "artifact checksum mismatch"

kill -TERM "$simd_pid"
rc=0
wait "$simd_pid" || rc=$?
simd_pid=""
[ "$rc" -eq 0 ] || fail "simd exited $rc on SIGTERM (graceful drain broken)"

echo "serve-smoke: ok (job $id, checksum ${sum1:0:12}…, second POST hit, drain clean)"
