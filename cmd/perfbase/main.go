// Command perfbase measures and tracks the simulator's performance
// baseline, one benchmark per experiment of the paper.
//
// Each experiment is timed end-to-end in Quick mode (the same workload as
// `go test -bench`), recording ns/op and allocs/op. Alongside the timing,
// one instrumented run (with a metrics registry attached) captures the
// experiment's reference event count — the number of simulation events the
// fully-expanded chunk-level model dispatches. That count is a pure
// measure of modelled work: it is independent of host speed and of the
// fabric's coalescing fast path (a registry pins the expanded model, see
// fabric.SetCoalescing), so events_per_sec = reference events / wall time
// is comparable across machines and across optimizations that shrink the
// dispatched-event stream without changing the modelled traffic.
//
// Baselines form a trajectory: each optimization PR records a new
// BENCH_<n>.json next to the old ones, and compare mode diffs a fresh
// measurement against the newest file on disk, so the history of the
// simulator's throughput stays in the repo.
//
// Usage:
//
//	go run ./cmd/perfbase -write BENCH_9.json     # record a baseline
//	go run ./cmd/perfbase -compare BENCH_9.json   # exit 1 on >10% regression
//	go run ./cmd/perfbase -shards 4 -write ...    # also time the sharded kernel
//
// `make bench-baseline` and `make bench-compare` wrap the two modes and
// pick the BENCH_<n>.json names automatically.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// regressionTolerance is the fractional ns/op slowdown allowed before
// compare mode fails. Quick-mode experiments run tens of milliseconds, so
// run-to-run noise sits well under this on an idle machine.
const regressionTolerance = 0.10

// Entry is one experiment's measured baseline. SimEvents and
// EventsPerSec are zero when the experiment performs no simulation
// (the cost-model tables) or does not thread a metrics registry to its
// machines (some ablations); ns/op and allocs/op are always measured.
// The Sharded* fields record the same end-to-end timing with each
// machine's event kernel split over -shards shards (zero when measured
// serial-only): ShardedEventsPerSec divides the SAME reference event
// count by the sharded wall time, so serial-vs-sharded throughput is
// directly comparable per experiment.
type Entry struct {
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	SimEvents    uint64  `json:"sim_events"`
	EventsPerSec float64 `json:"events_per_sec"`

	ShardedNsPerOp      int64   `json:"sharded_ns_per_op,omitempty"`
	ShardedEventsPerSec float64 `json:"sharded_events_per_sec,omitempty"`
}

// Baseline is the on-disk format (BENCH_<n>.json). Shards records the
// shard count the Sharded* entry fields were measured at (0 or 1 means
// serial-only). MaxProcs records GOMAXPROCS at measurement time — the
// context a sharded/serial throughput ratio must be read in: on one
// core the sharded kernel cannot beat serial, it can only bound its
// coordination overhead.
type Baseline struct {
	GoVersion  string           `json:"go_version"`
	GOARCH     string           `json:"goarch"`
	MaxProcs   int              `json:"maxprocs,omitempty"`
	Shards     int              `json:"shards,omitempty"`
	CreatedAt  string           `json:"created_at"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func measure(id string, shards int) (Entry, error) {
	e, err := experiments.Get(id)
	if err != nil {
		return Entry{}, err
	}
	// Reference work: one instrumented run. The registry both disables the
	// coalescing fast path and counts every dispatched event, so this is
	// the size of the experiment's fully-expanded event stream.
	reg := metrics.New()
	if _, err := e.Run(experiments.Options{Quick: true, Metrics: reg}); err != nil {
		return Entry{}, err
	}
	simEvents := reg.Counter("sim.events_dispatched").Value()

	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(experiments.Options{Quick: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	ns := res.NsPerOp()
	ent := Entry{
		NsPerOp:     ns,
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		SimEvents:   simEvents,
	}
	if ns > 0 {
		ent.EventsPerSec = float64(simEvents) / (float64(ns) / 1e9)
	}

	if shards > 1 {
		// Same workload through the sharded kernel. The event count is the
		// serial reference above — the modelled work is identical by the
		// determinism guarantee — so the two EventsPerSec figures divide the
		// same numerator and their ratio is a pure wall-time ratio.
		sres := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(experiments.Options{Quick: true, Shards: shards}); err != nil {
					b.Fatal(err)
				}
			}
		})
		ent.ShardedNsPerOp = sres.NsPerOp()
		if ent.ShardedNsPerOp > 0 {
			ent.ShardedEventsPerSec = float64(simEvents) / (float64(ent.ShardedNsPerOp) / 1e9)
		}
	}
	return ent, nil
}

func main() {
	write := flag.String("write", "", "measure all experiments and write a baseline JSON file")
	compare := flag.String("compare", "", "measure all experiments and compare against a baseline JSON file")
	exps := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	shards := flag.Int("shards", 1, "also time each experiment with the kernel split over N shards (1 = serial only)")
	flag.Parse()
	if (*write == "") == (*compare == "") {
		fmt.Fprintln(os.Stderr, "perfbase: exactly one of -write or -compare is required")
		os.Exit(2)
	}

	ids := experiments.IDs()
	if *exps != "" {
		ids = strings.Split(*exps, ",")
	}
	sort.Strings(ids)

	entries := make(map[string]Entry, len(ids))
	for _, id := range ids {
		ent, err := measure(id, *shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbase: %s: %v\n", id, err)
			os.Exit(1)
		}
		entries[id] = ent
		line := fmt.Sprintf("%-8s %12d ns/op %10d allocs/op %12d events %14.0f events/sec",
			id, ent.NsPerOp, ent.AllocsPerOp, ent.SimEvents, ent.EventsPerSec)
		if ent.ShardedNsPerOp > 0 {
			line += fmt.Sprintf("  | shards=%d %14.0f events/sec (%.2fx)",
				*shards, ent.ShardedEventsPerSec,
				float64(ent.NsPerOp)/float64(ent.ShardedNsPerOp))
		}
		fmt.Println(line)
	}

	if *write != "" {
		b := Baseline{
			GoVersion:  runtime.Version(),
			GOARCH:     runtime.GOARCH,
			MaxProcs:   runtime.GOMAXPROCS(0),
			Shards:     *shards,
			CreatedAt:  time.Now().UTC().Format(time.RFC3339),
			Benchmarks: entries,
		}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbase:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "perfbase:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *write, len(entries))
		return
	}

	data, err := os.ReadFile(*compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbase:", err)
		os.Exit(1)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "perfbase: %s: %v\n", *compare, err)
		os.Exit(1)
	}
	var regressions []string
	for _, id := range ids {
		old, ok := base.Benchmarks[id]
		if !ok {
			fmt.Printf("%-8s new benchmark (not in baseline)\n", id)
			continue
		}
		now := entries[id]
		delta := float64(now.NsPerOp-old.NsPerOp) / float64(old.NsPerOp)
		mark := ""
		if delta > regressionTolerance {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %d -> %d ns/op (%+.1f%%)", id, old.NsPerOp, now.NsPerOp, delta*100))
		}
		fmt.Printf("%-8s %12d -> %12d ns/op  %+6.1f%%%s\n",
			id, old.NsPerOp, now.NsPerOp, delta*100, mark)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "perfbase: %d regression(s) beyond %.0f%%:\n",
			len(regressions), regressionTolerance*100)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Printf("no ns/op regressions beyond %.0f%% against %s\n",
		regressionTolerance*100, *compare)
}
