// Command repro regenerates the tables and figures of "A Comparison of 4X
// InfiniBand and Quadrics Elan-4 Technologies" (CLUSTER 2004) from the
// simulated platform.
//
// Usage:
//
//	repro -list                 # experiment ids with descriptions
//	repro -exp list             # same listing (mirrors GET /v1/experiments on simd)
//	repro -exp fig1a            # one experiment, full fidelity
//	repro -exp all              # everything, experiments in parallel
//	repro -exp all -jobs 1      # serial run (byte-identical stdout)
//	repro -exp fig5 -shards 4   # parallel simulation kernel (byte-identical results)
//	repro -exp fig3 -quick      # fast, reduced sweep
//	repro -exp fig7 -csv        # emit CSV instead of aligned tables
//	repro -exp all -out results # also write one .txt + .json per experiment
//	repro -exp all -timeout 5m  # abandon any single simulation past 5m
//	repro -exp fig1b -metrics m.json    # counters/histograms snapshot per experiment
//	repro -exp fig2 -tracefile t.json   # chrome://tracing timeline of every machine
//	repro -exp all -faults storm:2026   # seeded random fault storm on every fabric
//	repro -exp fig4 -faults 'loss:all:p=0.001' -retries 2  # explicit plan + job retry
//	repro -exp all -quick -faults storm:2026 -chaos-strict # fault-kills tolerated, real bugs still exit 1
//	repro -campaign 64                  # behavioral-contract campaign over 64 generated scenarios
//	repro -campaign 64 -campaign-seed 7 -campaign-corpus corpus  # write shrunk reproducers
//
// Experiments print to stdout in registration order regardless of -jobs
// (results stream as soon as their predecessors are done), so stdout is
// byte-identical for any worker count. Timing, progress, and the summary
// go to stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/runner"
)

func main() { os.Exit(run()) }

// outcome carries one finished experiment through the pool.
type outcome struct {
	res       *experiments.Result
	body      string
	wall      time.Duration
	simEvents uint64 // total events across the experiment's sims (-metrics only)
}

func run() int {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list), comma list, or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quick    = flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
		csv      = flag.Bool("csv", false, "emit CSV tables")
		plot     = flag.Bool("plot", false, "append ASCII charts for numeric tables")
		out      = flag.String("out", "", "directory to also write per-experiment .txt/.csv and .json files into")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "max concurrent simulations per sweep (and concurrent experiments with -exp all); 1 = serial")
		timeout  = flag.Duration("timeout", 0, "per-simulation timeout inside sweeps (0 = none)")
		progress = flag.Bool("progress", false, "report per-sweep progress on stderr (done/total, ETA)")
		metOut   = flag.String("metrics", "", "write a per-experiment JSON snapshot of simulation counters/gauges/histograms to this file")
		traceOut = flag.String("tracefile", "", "write a merged chrome://tracing (trace_event JSON) timeline of every simulated machine to this file")
		faults   = flag.String("faults", "", "fault plan installed on every simulated fabric: a spec like 'loss:all:p=0.001;down:spine(0):at=10us:for=200us', or 'storm:<seed>' for a randomized storm (deterministic: same spec => byte-identical output at any -jobs)")
		retries  = flag.Int("retries", 0, "re-run a sweep point that panics or times out up to N extra times before recording the failure")
		shards   = flag.Int("shards", 1, "parallel simulation-kernel shards per machine (conservative-lookahead PDES); like -jobs an execution knob: results are byte-identical at any value. Clamped per machine to its node count; serial-only features (-metrics, -tracefile, RGET) force 1")
		strict   = flag.Bool("chaos-strict", false, "with -faults: tolerate experiments deterministically killed by the fault plan (IB retry-budget exhaustion) but still exit nonzero on any other failure (panic, timeout, bug)")

		campaignN      = flag.Int("campaign", 0, "run a behavioral-contract campaign over N generated scenarios instead of experiments (see internal/campaign); violations are auto-shrunk and reported")
		campaignSeed   = flag.Uint64("campaign-seed", campaign.DefaultSeed, "scenario-generation seed for -campaign (same seed => identical scenarios, digest, and findings at any -jobs)")
		campaignCorpus = flag.String("campaign-corpus", "", "directory to write shrunk, checksummed reproducer specs into (one JSON file per violation)")
	)
	flag.Parse()

	if *campaignN > 0 {
		return runCampaign(*campaignN, *campaignSeed, *jobs, *campaignCorpus)
	}

	if *list || *exp == "list" {
		// Same listing the server's GET /v1/experiments catalog serves.
		os.Stdout.WriteString(experiments.Listing())
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "repro: -exp required (or -list); e.g. -exp fig1a or -exp all")
		return 2
	}

	var todo []experiments.Experiment
	if *exp == "all" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.Get(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			todo = append(todo, e)
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	// SIGINT/SIGTERM drain the suite gracefully: no new sweep points are
	// scheduled, in-flight simulations stop cooperatively, and whatever
	// already completed still prints. A second signal kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiments.Options{Quick: *quick, Jobs: *jobs, Timeout: *timeout,
		Faults: *faults, Retries: *retries, Shards: *shards, Ctx: ctx}
	if *progress {
		opts.Progress = os.Stderr
	}

	// One registry per experiment when observability output is requested:
	// counters stay attributable to their experiment, and the files below
	// are written in registration order, independent of scheduling.
	var regs []*metrics.Registry
	if *metOut != "" || *traceOut != "" {
		regs = make([]*metrics.Registry, len(todo))
		for i := range regs {
			regs[i] = metrics.New()
			if *traceOut != "" {
				regs[i].EnableTracing()
			}
		}
	}

	jobList := make([]runner.Job, len(todo))
	for i, e := range todo {
		i, e := i, e
		jobList[i] = runner.Job{
			ID:     e.ID,
			Labels: map[string]string{"experiment": e.ID},
			Run: func(context.Context) (interface{}, error) {
				start := time.Now()
				jopts := opts
				if regs != nil {
					jopts.Metrics = regs[i]
				}
				res, err := e.Run(jopts)
				if err != nil {
					return nil, err
				}
				oc := &outcome{res: res, body: render(res, *csv, *plot), wall: time.Since(start)}
				if regs != nil {
					oc.simEvents = regs[i].Counter("sim.events_dispatched").Value()
				}
				return oc, nil
			},
		}
	}

	// Stream bodies to stdout in submission (registration) order as soon
	// as each experiment and all of its predecessors are done; the runner
	// serializes OnResult calls.
	pending := make(map[int]string, len(jobList))
	nextOut := 0
	pool := &runner.Pool{
		Workers: *jobs,
		Name:    "repro",
		OnResult: func(i int, r runner.Result) {
			body := ""
			if o, ok := r.Value.(*outcome); ok {
				body = o.body
			}
			pending[i] = body
			for {
				b, ok := pending[nextOut]
				if !ok {
					break
				}
				os.Stdout.WriteString(b)
				delete(pending, nextOut)
				nextOut++
			}
		},
	}
	if len(todo) > 1 {
		pool.Progress = os.Stderr
	}
	suiteStart := time.Now()
	results := pool.Run(ctx, jobList)
	if ctx.Err() != nil {
		stop() // restore default handling before reporting
		fmt.Fprintln(os.Stderr, "repro: interrupted; draining finished, partial results above")
	}

	// Per-experiment wall-time summary; failures listed explicitly so an
	// error in a late experiment cannot scroll past unnoticed. Under
	// -chaos-strict a death by the installed fault plan (an IB QP entering
	// the error state after retry exhaustion — a modeled, deterministic
	// outcome) is tolerated, so the exit code stays meaningful for every
	// OTHER kind of failure instead of being masked wholesale.
	failed, tolerated := 0, 0
	fmt.Fprintf(os.Stderr, "repro: %d experiment(s), jobs=%d, wall %v\n",
		len(todo), *jobs, time.Since(suiteStart).Round(time.Millisecond))
	for i, r := range results {
		e := todo[i]
		if r.Err != nil {
			if *strict && *faults != "" && strings.Contains(r.Err.Error(), "retry budget exhausted") {
				tolerated++
				fmt.Fprintf(os.Stderr, "  %-8s killed by fault plan in %8v (tolerated): %v\n",
					e.ID, r.Wall.Round(time.Millisecond), r.Err)
				continue
			}
			failed++
			fmt.Fprintf(os.Stderr, "  %-8s FAILED after %8v: %v\n", e.ID, r.Wall.Round(time.Millisecond), r.Err)
			continue
		}
		oc := r.Value.(*outcome)
		fmt.Fprintf(os.Stderr, "  %-8s ok in %8v\n", e.ID, oc.wall.Round(time.Millisecond))
		if *out != "" {
			if err := writeArtifacts(*out, e, oc, opts, *csv, *timeout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
	}
	if *metOut != "" {
		if err := writeMetrics(*metOut, todo, regs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, todo, regs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if tolerated > 0 {
		fmt.Fprintf(os.Stderr, "repro: %d of %d experiments killed by the fault plan (tolerated under -chaos-strict)\n",
			tolerated, len(todo))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "repro: %d of %d experiments failed\n", failed, len(todo))
		return 1
	}
	if ctx.Err() != nil {
		// A drained sweep still renders its completed points, so nothing
		// above "failed" — but an interrupted run is not a clean one.
		return 130
	}
	return 0
}

// runCampaign executes a behavioral-contract campaign (internal/campaign):
// generate scenarios from the seed, check every contract on each, shrink
// violations to minimal reproducers. Stdout carries the deterministic
// report (identical for a given seed at any -jobs); progress goes to
// stderr. Exit is 0 only when every contract held.
func runCampaign(count int, seed uint64, jobs int, corpusDir string) int {
	rep, err := campaign.Run(campaign.Config{
		Seed:      seed,
		Count:     count,
		Jobs:      jobs,
		CorpusDir: corpusDir,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("campaign: seed %d, %d scenarios, %d contracts\n", rep.Seed, rep.Scenarios, len(campaign.Catalog))
	fmt.Printf("campaign: report digest %s\n", rep.Digest)
	if len(rep.Violations) == 0 {
		fmt.Println("campaign: all contracts held (0 violations)")
		return 0
	}
	fmt.Printf("campaign: %d violation(s):\n", len(rep.Violations))
	for i := range rep.Violations {
		v := &rep.Violations[i]
		fmt.Printf("  %s %s: %s\n    scenario: %s\n    shrunk by %d step(s)\n",
			v.Contract, v.Name, v.Detail, v.Scenario.Canonical(), len(v.Lineage))
		// Point at the registered experiment that replays the same traffic
		// pattern under the same fault plan, for paper-scale diagnosis.
		if spec, err := experiments.CampaignSpec(v.Scenario.Workload, v.Scenario.Faults); err == nil {
			hint := "-exp " + spec.Experiment
			if spec.Faults != "" {
				hint += fmt.Sprintf(" -faults %q", spec.Faults)
			}
			fmt.Printf("    nearest full sweep: repro %s\n", hint)
		}
	}
	if corpusDir != "" {
		if err := writeCampaignReport(corpusDir, rep, jobs); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	return 1
}

// writeCampaignReport stores the violation summary as a checksummed
// runner artifact (corpusDir/campaign.json) carrying the shrink lineage
// of every reproducer — the machine-readable companion to the bc-*.json
// corpus entries, in the same self-verifying format as experiment
// artifacts.
func writeCampaignReport(dir string, rep *campaign.Report, jobs int) error {
	table := runner.Table{
		Title:   "Behavioral-contract violations",
		Headers: []string{"contract", "name", "scenario", "detail"},
	}
	var lineage []string
	for i := range rep.Violations {
		v := &rep.Violations[i]
		table.Rows = append(table.Rows, []string{v.Contract, v.Name, v.Scenario.Canonical(), v.Detail})
		for _, step := range v.Lineage {
			lineage = append(lineage, v.FileName()+": "+step)
		}
	}
	a := &runner.Artifact{
		Experiment: "campaign",
		Title:      fmt.Sprintf("Campaign seed %d: %d violation(s) over %d scenarios", rep.Seed, len(rep.Violations), rep.Scenarios),
		Meta:       runner.Meta{Seed: rep.Seed, Jobs: jobs, CreatedAt: time.Now().UTC().Format(time.RFC3339)},
		Notes:      []string{"report digest " + rep.Digest},
		Lineage:    lineage,
	}
	a.Tables = []runner.Table{table}
	_, err := a.Write(dir)
	return err
}

// writeMetrics stores one counters/gauges/histograms snapshot per
// experiment, in registration order.
func writeMetrics(path string, todo []experiments.Experiment, regs []*metrics.Registry) error {
	type expSnapshot struct {
		Experiment string `json:"experiment"`
		metrics.Snapshot
	}
	snaps := make([]expSnapshot, len(todo))
	for i, e := range todo {
		snaps[i] = expSnapshot{Experiment: e.ID, Snapshot: regs[i].Snapshot()}
	}
	data, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeTrace merges every experiment's timeline tracks into one
// chrome://tracing-loadable file.
func writeTrace(path string, todo []experiments.Experiment, regs []*metrics.Registry) error {
	sources := make([]metrics.TraceSource, len(todo))
	for i, e := range todo {
		sources[i] = metrics.TraceSource{Label: e.ID, Reg: regs[i]}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := metrics.WriteChromeTrace(f, sources...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// render produces the stdout/.txt body for one experiment.
func render(res *experiments.Result, csv, plot bool) string {
	if csv {
		var b strings.Builder
		for _, t := range res.Tables {
			b.WriteString(t.CSV())
			b.WriteString("\n")
		}
		return b.String()
	}
	body := res.String()
	if plot {
		for _, tb := range res.Tables {
			if c := report.ChartFromTable(tb, 64, 16, true); c != nil {
				body += "\n" + tb.Title + "\n" + c.String()
			}
		}
	}
	return body
}

// writeArtifacts stores the rendered body (.txt or .csv) and the
// machine-readable JSON artifact for one experiment.
func writeArtifacts(dir string, e experiments.Experiment, oc *outcome,
	opts experiments.Options, csv bool, timeout time.Duration) error {
	ext := ".txt"
	if csv {
		ext = ".csv"
	}
	if err := os.WriteFile(filepath.Join(dir, e.ID+ext), []byte(oc.body), 0o644); err != nil {
		return err
	}
	// Serial is the zero value for the shards provenance field: only
	// actually-sharded runs record it, keeping default artifacts (and
	// the fix-verify byte-identity contract) schema-stable.
	metaShards := 0
	if opts.Shards > 1 {
		metaShards = opts.Shards
	}
	a := &runner.Artifact{
		Experiment: e.ID,
		Title:      oc.res.Title,
		Meta: runner.Meta{
			Quick:     opts.Quick,
			Jobs:      opts.Jobs,
			Shards:    metaShards,
			Seed:      experiments.CanonicalSeed,
			TimeoutMS: float64(timeout) / float64(time.Millisecond),
			WallMS:    float64(oc.wall) / float64(time.Millisecond),
			GoVersion: runtime.Version(),
			CreatedAt: time.Now().UTC().Format(time.RFC3339),
			SimEvents: oc.simEvents,
		},
		Notes:    oc.res.Notes,
		Failures: oc.res.Failures,
	}
	if oc.simEvents > 0 && oc.wall > 0 {
		a.Meta.EventsPerSec = float64(oc.simEvents) / oc.wall.Seconds()
	}
	for _, t := range oc.res.Tables {
		a.Tables = append(a.Tables, runner.Table{Title: t.Title, Headers: t.Headers, Rows: t.Rows})
	}
	_, err := a.Write(dir)
	return err
}
