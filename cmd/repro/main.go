// Command repro regenerates the tables and figures of "A Comparison of 4X
// InfiniBand and Quadrics Elan-4 Technologies" (CLUSTER 2004) from the
// simulated platform.
//
// Usage:
//
//	repro -list
//	repro -exp fig1a            # one experiment, full fidelity
//	repro -exp all              # everything (minutes)
//	repro -exp fig3 -quick      # fast, reduced sweep
//	repro -exp fig7 -csv        # emit CSV instead of aligned tables
//	repro -exp all -out results # also write one .txt/.csv per experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		quick = flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
		csv   = flag.Bool("csv", false, "emit CSV tables")
		plot  = flag.Bool("plot", false, "append ASCII charts for numeric tables")
		out   = flag.String("out", "", "directory to also write per-experiment files into")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "repro: -exp required (or -list); e.g. -exp fig1a or -exp all")
		os.Exit(2)
	}

	var todo []experiments.Experiment
	if *exp == "all" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.Get(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	opts := experiments.Options{Quick: *quick}
	for _, e := range todo {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		var body string
		if *csv {
			var b strings.Builder
			for _, t := range res.Tables {
				b.WriteString(t.CSV())
				b.WriteString("\n")
			}
			body = b.String()
		} else {
			body = res.String()
			if *plot {
				for _, tb := range res.Tables {
					if c := report.ChartFromTable(tb, 64, 16, true); c != nil {
						body += "\n" + tb.Title + "\n" + c.String()
					}
				}
			}
		}
		fmt.Print(body)
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *out != "" {
			ext := ".txt"
			if *csv {
				ext = ".csv"
			}
			path := filepath.Join(*out, e.ID+ext)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
