// Command simlint runs the repository's determinism/invariant
// static-analysis suite (internal/lint) over the module tree and exits
// nonzero if any active invariant violation remains.
//
// Usage:
//
//	simlint [-C dir] [-run name[,name...]] [-list] [-stats]
//	        [-format text|json|sarif] [-baseline file] [-write-baseline file]
//
// With no flags it locates the enclosing module root (walking up from
// the working directory to go.mod) and runs every analyzer under the
// repository policy. Text diagnostics print as file:line:col: analyzer:
// message, sorted by position, paths relative to the module root.
//
// -format json and -format sarif emit machine-readable findings on
// stdout, including findings suppressed by //simlint:allow annotations
// (with their allow-state); the text format and the exit code consider
// only active findings. -baseline filters active findings through a
// ratchet file written by -write-baseline: known findings stop gating,
// new ones still fail, and baseline entries that no longer occur are
// reported so the ratchet can be tightened. -stats prints per-rule
// finding counts on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	chdir := flag.String("C", "", "module root to lint (default: found via go.mod from cwd)")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	baselinePath := flag.String("baseline", "", "ratchet file of accepted findings; only new findings gate")
	writeBaseline := flag.String("write-baseline", "", "snapshot current active findings to a ratchet file and exit")
	stats := flag.Bool("stats", false, "print per-rule finding counts on stderr")
	flag.Parse()

	if *list {
		for _, a := range lint.DefaultAnalyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fatal(fmt.Errorf("simlint: unknown format %q (want text, json, or sarif)", *format))
	}

	root := *chdir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}

	diags, err := lintRoot(root, *run)
	if err != nil {
		fatal(err)
	}
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}

	if *writeBaseline != "" {
		b := lint.NewBaseline(lint.Active(diags))
		data, err := b.Marshal()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*writeBaseline, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "simlint: wrote %d accepted finding(s) to %s\n", len(lint.Active(diags)), *writeBaseline)
		return
	}

	// The baseline filters the gating set; suppressed findings never
	// consume ratchet budget, and baselined indices feed the SARIF
	// suppression records.
	gating := lint.Active(diags)
	covered := map[int]bool{}
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fatal(err)
		}
		b, err := lint.ParseBaseline(data)
		if err != nil {
			fatal(err)
		}
		var stale []lint.BaselineEntry
		gating, covered, stale = b.Filter(diags)
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "simlint: baseline entry no longer occurs (remove it): %s %s: %s (count %d)\n",
				e.Rule, e.File, e.Message, e.Count)
		}
	}

	switch *format {
	case "text":
		for _, d := range gating {
			fmt.Println(d)
		}
	case "json":
		out, err := marshalJSON(diags, covered)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
	case "sarif":
		out, err := lint.SARIF(diags, covered)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
		fmt.Println()
	}

	if *stats {
		printStats(diags, covered)
	}
	if len(gating) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(gating))
		os.Exit(1)
	}
}

// marshalJSON renders the plain-JSON finding list: every finding with
// its position and allow-state.
func marshalJSON(diags []lint.Diagnostic, baselined map[int]bool) ([]byte, error) {
	type finding struct {
		Rule       string `json:"rule"`
		File       string `json:"file"`
		Line       int    `json:"line"`
		Column     int    `json:"column"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed,omitempty"`
		Baselined  bool   `json:"baselined,omitempty"`
	}
	out := make([]finding, 0, len(diags))
	for i, d := range diags {
		out = append(out, finding{
			Rule:       d.Analyzer,
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Column:     d.Pos.Column,
			Message:    d.Message,
			Suppressed: d.Suppressed,
			Baselined:  baselined[i],
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// printStats prints per-rule counts on stderr: active findings first,
// then the suppressed/baselined tallies that explain a quiet run.
func printStats(diags []lint.Diagnostic, baselined map[int]bool) {
	type tally struct{ active, suppressed, base int }
	byRule := map[string]*tally{}
	for i, d := range diags {
		tl := byRule[d.Analyzer]
		if tl == nil {
			tl = &tally{}
			byRule[d.Analyzer] = tl
		}
		switch {
		case d.Suppressed:
			tl.suppressed++
		case baselined[i]:
			tl.base++
		default:
			tl.active++
		}
	}
	rules := make([]string, 0, len(byRule))
	for r := range byRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		tl := byRule[r]
		line := fmt.Sprintf("simlint: %-14s %3d active", r, tl.active)
		if tl.suppressed > 0 {
			line += fmt.Sprintf(", %d allowed", tl.suppressed)
		}
		if tl.base > 0 {
			line += fmt.Sprintf(", %d baselined", tl.base)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if len(rules) == 0 {
		fmt.Fprintln(os.Stderr, "simlint: no findings")
	}
}

// lintRoot runs the full suite, optionally restricted to the named
// analyzers (the policy still decides which packages each one sees). A
// restricted run cannot judge allow annotations, so stale-allow
// detection is disabled for it.
func lintRoot(root, run string) ([]lint.Diagnostic, error) {
	if run == "" {
		return lint.LintModule(root)
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(run, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := lint.AnalyzerByName(name); !ok {
			return nil, fmt.Errorf("simlint: unknown analyzer %q (use -list)", name)
		}
		selected[name] = true
	}
	cfg := lint.DefaultConfig()
	cfg.ReportStaleAllows = false
	loader := lint.NewLoader(cfg.ModulePath, root)
	pkgs, err := loader.LoadTree()
	if err != nil {
		return nil, err
	}
	return lint.Run(pkgs, nil, cfg, func(pkgPath string) []*lint.Analyzer {
		var active []*lint.Analyzer
		for _, a := range lint.AnalyzersFor(cfg, pkgPath) {
			if selected[a.Name] {
				active = append(active, a)
			}
		}
		return active
	}), nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("simlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
