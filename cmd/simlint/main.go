// Command simlint runs the repository's determinism/invariant
// static-analysis suite (internal/lint) over the module tree and exits
// nonzero if any invariant is violated.
//
// Usage:
//
//	simlint [-C dir] [-run name[,name...]] [-list]
//
// With no flags it locates the enclosing module root (walking up from
// the working directory to go.mod) and runs every analyzer under the
// repository policy. Diagnostics print as file:line:col: analyzer:
// message, sorted by position, paths relative to the module root.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	chdir := flag.String("C", "", "module root to lint (default: found via go.mod from cwd)")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.DefaultAnalyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root := *chdir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}

	diags, err := lintRoot(root, *run)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// lintRoot runs the full suite, optionally restricted to the named
// analyzers (the policy still decides which packages each one sees).
func lintRoot(root, run string) ([]lint.Diagnostic, error) {
	if run == "" {
		return lint.LintModule(root)
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(run, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := lint.AnalyzerByName(name); !ok {
			return nil, fmt.Errorf("simlint: unknown analyzer %q (use -list)", name)
		}
		selected[name] = true
	}
	cfg := lint.DefaultConfig()
	loader := lint.NewLoader(cfg.ModulePath, root)
	pkgs, err := loader.LoadTree()
	if err != nil {
		return nil, err
	}
	return lint.Run(pkgs, nil, cfg, func(pkgPath string) []*lint.Analyzer {
		var active []*lint.Analyzer
		for _, a := range lint.AnalyzersFor(cfg, pkgPath) {
			if selected[a.Name] {
				active = append(active, a)
			}
		}
		return active
	}), nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("simlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
