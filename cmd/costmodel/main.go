// Command costmodel prices interconnect designs for a given cluster size —
// the interactive counterpart to Tables 2-3 and Figure 7.
//
// Usage:
//
//	costmodel -nodes 128
//	costmodel -nodes 1024 -nodecost 3000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 128, "cluster size in nodes")
		nodeCost = flag.Float64("nodecost", 0, "override compute-node price (0 = paper's $2500)")
	)
	flag.Parse()

	prices := repro.Prices()
	if *nodeCost > 0 {
		prices.NodeCost = repro.USD(*nodeCost)
	}

	elan, err := repro.PriceElan(prices, *nodes)
	fail(err)
	ib96, err := repro.PriceIB(prices, *nodes, 96)
	fail(err)
	combo, err := repro.PriceIBCombo(prices, *nodes)
	fail(err)

	fmt.Printf("Interconnect pricing for %d nodes (node price $%.0f)\n\n", *nodes, float64(prices.NodeCost))
	fmt.Printf("%-32s %12s %12s %14s\n", "design", "network $", "$/port", "system $/node")
	for _, n := range []*repro.PricedNetwork{elan, ib96, combo} {
		fmt.Printf("%-32s %12.0f %12.0f %14.0f\n",
			n.Label, float64(n.NetworkTotal()), float64(n.PerPort()),
			float64(n.SystemPerNode(prices.NodeCost)))
	}
	fmt.Println()
	gap := func(ib *repro.PricedNetwork) float64 {
		e := float64(elan.SystemPerNode(prices.NodeCost))
		i := float64(ib.SystemPerNode(prices.NodeCost))
		return (e/i - 1) * 100
	}
	fmt.Printf("Elan-4 total-system premium: %+.1f%% vs 96-port IB, %+.1f%% vs 24/288-port IB\n",
		gap(ib96), gap(combo))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "costmodel:", err)
		os.Exit(1)
	}
}
