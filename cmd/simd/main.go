// Command simd is the simulation-as-a-service daemon: a long-running
// HTTP job server over the experiment suite (internal/server). It
// accepts experiment specs, admission-controls them, runs them on a
// persistent worker pool, streams progress over SSE, and serves results
// from a content-addressed artifact cache so identical requests cost
// one simulation.
//
// Usage:
//
//	simd -addr 127.0.0.1:8941 -cache .simd-cache
//	simd -addr 127.0.0.1:0    # ephemeral port; the chosen address prints on stdout
//
// Quickstart against a running server:
//
//	curl -s localhost:8941/v1/experiments
//	curl -s -X POST localhost:8941/v1/jobs -d '{"experiment":"fig1a","quick":true}'
//	curl -s -N localhost:8941/v1/jobs/job-000001/events   # SSE until completion
//	curl -s localhost:8941/v1/jobs/job-000001/result      # the artifact
//
// SIGINT/SIGTERM drains gracefully: admission closes (503), queued jobs
// cancel, running simulations finish (bounded by -drain-grace, after
// which they are cancelled cooperatively). A second signal exits
// immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr       = flag.String("addr", "127.0.0.1:8941", "listen address; port 0 picks an ephemeral port (printed on stdout)")
		cacheDir   = flag.String("cache", ".simd-cache", "content-addressed artifact cache directory")
		cacheMax   = flag.Int64("cache-max-bytes", 0, "artifact cache size budget in bytes; LRU entries are evicted once exceeded (0 = unbounded)")
		workers    = flag.Int("workers", 0, "concurrently running experiments (0 = GOMAXPROCS)")
		sweepJobs  = flag.Int("sweep-jobs", 0, "sweep-point concurrency inside each experiment (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue", 64, "admission queue depth across both priority lanes")
		rate       = flag.Float64("rate", 0, "per-tenant admission rate in jobs/sec (0 = unlimited)")
		burst      = flag.Float64("burst", 8, "per-tenant token-bucket burst")
		simTO      = flag.Duration("sim-timeout", 0, "per-simulation timeout inside sweeps (0 = none)")
		retries    = flag.Int("retries", 0, "re-run a sweep point that panics or times out up to N extra times")
		version    = flag.String("code-version", "", "cache-key code version (default: embedded VCS revision, else \"dev\")")
		grace      = flag.Duration("drain-grace", 30*time.Second, "how long a signal-initiated drain waits for running jobs before cancelling them")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "simd: ", log.LstdFlags)
	srv, err := server.New(server.Config{
		CacheDir:      *cacheDir,
		CacheMaxBytes: *cacheMax,
		Workers:       *workers,
		SweepJobs:     *sweepJobs,
		QueueDepth:    *queueDepth,
		QuotaRate:     *rate,
		QuotaBurst:    *burst,
		SimTimeout:    *simTO,
		Retries:       *retries,
		CodeVersion:   *version,
		Logf:          logger.Printf,
	})
	if err != nil {
		logger.Print(err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Print(err)
		return 1
	}
	// The chosen address goes to stdout (and only it does), so scripts
	// using an ephemeral port can read the first line and start curling.
	fmt.Printf("listening on http://%s\n", ln.Addr())
	logger.Printf("serving on %s (cache %s, code version %s)", ln.Addr(), *cacheDir, srv.CodeVersion())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		logger.Print(err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default handling: a second signal kills the process
	logger.Printf("signal received; draining (grace %v)", *grace)

	// Drain the job layer first so submissions get an orderly 503 (not a
	// connection refused) and SSE followers see their terminal events;
	// only then close the HTTP front end.
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	drainErr := srv.Drain(graceCtx)
	if err := httpSrv.Shutdown(graceCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if drainErr != nil {
		logger.Printf("drain cut short: %v", drainErr)
		return 1
	}
	logger.Print("drained cleanly")
	return 0
}
