// Command netbench runs the micro-benchmarks (ping-pong, streaming, b_eff)
// on either simulated interconnect with custom parameters — the
// interactive counterpart to the fixed Figure 1 experiment.
//
// Usage:
//
//	netbench -net elan -bench pingpong -max 4194304
//	netbench -net ib   -bench streaming -window 32
//	netbench -net elan -bench beff -ranks 16
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		netFlag = flag.String("net", "elan", "interconnect: elan | ib")
		bench   = flag.String("bench", "pingpong", "benchmark: pingpong | streaming | beff")
		maxSize = flag.Int64("max", 4<<20, "largest message size in bytes (pingpong/streaming)")
		iters   = flag.Int("iters", 20, "iterations per size")
		window  = flag.Int("window", 16, "messages in flight (streaming)")
		ranks   = flag.Int("ranks", 8, "job size (beff)")
		seed    = flag.Uint64("seed", 42, "random-pattern seed (beff)")
	)
	flag.Parse()

	var network repro.Network
	switch *netFlag {
	case "elan":
		network = repro.QuadricsElan4
	case "ib":
		network = repro.InfiniBand4X
	default:
		fmt.Fprintln(os.Stderr, "netbench: -net must be elan or ib")
		os.Exit(2)
	}

	var sizes []repro.Bytes
	for s := repro.Bytes(1); s <= repro.Bytes(*maxSize); s *= 2 {
		sizes = append(sizes, s)
	}

	switch *bench {
	case "pingpong":
		pts, err := repro.PingPong(network, append([]repro.Bytes{0}, sizes...), *iters)
		fail(err)
		fmt.Printf("%-10s  %12s  %12s\n", "size", "latency(us)", "MB/s")
		for _, p := range pts {
			bw := "-"
			if p.Bandwidth > 0 {
				bw = fmt.Sprintf("%12.1f", p.Bandwidth.MBpsValue())
			}
			fmt.Printf("%-10s  %12.2f  %12s\n", p.Size, p.Latency.Microseconds(), bw)
		}
	case "streaming":
		pts, err := repro.Streaming(network, sizes, *window, *iters)
		fail(err)
		fmt.Printf("%-10s  %12s\n", "size", "MB/s")
		for _, p := range pts {
			fmt.Printf("%-10s  %12.1f\n", p.Size, p.Bandwidth.MBpsValue())
		}
	case "beff":
		res, err := repro.BEff(network, *ranks, *iters/4+1, *seed)
		fail(err)
		fmt.Printf("b_eff(%d ranks) = %.1f MB/s aggregate, %.1f MB/s per process\n",
			res.Ranks, res.BEff.MBpsValue(), res.PerProcess.MBpsValue())
	default:
		fmt.Fprintln(os.Stderr, "netbench: unknown -bench")
		os.Exit(2)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "netbench:", err)
		os.Exit(1)
	}
}
