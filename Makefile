# Development targets. `make check` is the tier-1 gate (vet, build,
# test), the race detector over the packages that own goroutines or
# shared instruments — internal/sim (process goroutines),
# internal/metrics (lock-free updates from parallel jobs),
# internal/runner, and the sweeps that run on them
# (internal/experiments) — plus simlint, the determinism/invariant
# static-analysis suite (internal/lint, see DESIGN.md "Determinism
# invariants").

GO ?= go
SHELL := /bin/bash

.PHONY: check vet build test race lint fix-verify bench bench-baseline bench-compare regen trace-demo

check: vet build test race lint

vet:
	$(GO) vet ./...

# lint runs the simlint suite: wallclock, globalstate, maprange,
# goroutine, mathrand, errcheck. Exits nonzero on any finding.
lint:
	$(GO) run ./cmd/simlint

# fix-verify regenerates every experiment's artifacts into a scratch
# directory and diffs them against the checked-in results/, proving that
# a refactor (e.g. a lint-driven fix) left the default output
# byte-identical. The .txt tables must match exactly; the .json
# artifacts embed per-run metadata by design (wall_ms, created_at, and —
# on instrumented runs — sim_events / events_per_sec, which depend on
# host speed and on whether the fabric fast path was pinned off; see
# internal/runner artifacts), so those fields are filtered before
# comparing. The scratch directory is removed on success and left in
# place on failure for inspection. Full fidelity takes ~15 min on one
# core.
fix-verify:
	rm -rf .fix-verify-results
	$(GO) run ./cmd/repro -exp all -out .fix-verify-results >/dev/null
	diff -ru --exclude=README.md --exclude='*.json' results .fix-verify-results
	@for f in results/*.json; do \
		b=$$(basename $$f); \
		diff <(grep -vE '"(wall_ms|created_at|sim_events|events_per_sec)"' $$f) \
		     <(grep -vE '"(wall_ms|created_at|sim_events|events_per_sec)"' .fix-verify-results/$$b) \
			|| { echo "fix-verify: $$b differs beyond per-run metadata"; exit 1; }; \
	done
	rm -rf .fix-verify-results
	@echo "results/ verified byte-identical (modulo per-run metadata in .json)"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/fabric/... ./internal/metrics/... ./internal/runner/... ./internal/experiments/...

bench:
	$(GO) test -bench=. -benchtime=1x

# bench-baseline records the per-experiment performance baseline
# (ns/op, allocs/op, reference event count, events/sec) into
# BENCH_<n>.json via cmd/perfbase; bench-compare re-measures and fails
# on any experiment more than 10% slower than the recorded baseline.
BENCH_BASELINE ?= BENCH_4.json

bench-baseline:
	$(GO) run ./cmd/perfbase -write $(BENCH_BASELINE)

bench-compare:
	$(GO) run ./cmd/perfbase -compare $(BENCH_BASELINE)

regen:
	$(GO) run ./cmd/repro -exp all -out results

# trace-demo produces sample observability artifacts: a counters snapshot
# and a chrome://tracing (or ui.perfetto.dev) loadable timeline of the
# fig1b bidirectional-bandwidth runs.
trace-demo:
	$(GO) run ./cmd/repro -exp fig1b -quick -metrics trace-demo-metrics.json -tracefile trace-demo.json
	@echo "wrote trace-demo-metrics.json and trace-demo.json (load in chrome://tracing)"
