# Development targets. `make check` is the tier-1 gate plus the race
# detector over the packages that own goroutines or shared instruments:
# internal/sim (process goroutines), internal/metrics (lock-free updates
# from parallel jobs), internal/runner, and the sweeps that run on them
# (internal/experiments).

GO ?= go

.PHONY: check vet build test race bench regen trace-demo

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/metrics/... ./internal/runner/... ./internal/experiments/...

bench:
	$(GO) test -bench=. -benchtime=1x

regen:
	$(GO) run ./cmd/repro -exp all -out results

# trace-demo produces sample observability artifacts: a counters snapshot
# and a chrome://tracing (or ui.perfetto.dev) loadable timeline of the
# fig1b bidirectional-bandwidth runs.
trace-demo:
	$(GO) run ./cmd/repro -exp fig1b -quick -metrics trace-demo-metrics.json -tracefile trace-demo.json
	@echo "wrote trace-demo-metrics.json and trace-demo.json (load in chrome://tracing)"
