# Development targets. `make check` is the tier-1 gate plus the race
# detector over the packages that own goroutines (internal/runner) and the
# sweeps that run on them (internal/experiments) — load-bearing now that
# sweeps execute in parallel.

GO ?= go

.PHONY: check vet build test race bench regen

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/runner/... ./internal/experiments/...

bench:
	$(GO) test -bench=. -benchtime=1x

regen:
	$(GO) run ./cmd/repro -exp all -out results
