# Development targets. `make check` is the tier-1 gate: vet, build,
# test, the race detector over the whole module, simlint — the
# determinism/invariant static-analysis suite (internal/lint, see
# DESIGN.md "Determinism invariants") — and the job-server smoke test.

GO ?= go
SHELL := /bin/bash

.PHONY: check vet build test race lint lint-sarif serve-smoke shard-smoke fix-verify bench bench-baseline bench-compare regen trace-demo chaos campaign

check: vet build test race lint shard-smoke serve-smoke

vet:
	$(GO) vet ./...

# lint runs the simlint suite — the syntactic checks (wallclock,
# globalstate, maprange, goroutine, mathrand, errcheck) plus the SSA
# dataflow rules (shardsafety, timetaint, rngprovenance, floatorder) and
# stale-allow hygiene. Exits nonzero on any active finding; -stats
# prints the per-rule tally, including suppressions, on stderr.
lint:
	$(GO) run ./cmd/simlint -stats

# lint-sarif emits the same findings as a SARIF 2.1.0 log (simlint.sarif)
# for code-review tooling; suppressed findings are carried with their
# allow-state rather than dropped.
lint-sarif:
	$(GO) run ./cmd/simlint -format sarif > simlint.sarif || true
	@echo "wrote simlint.sarif"

# fix-verify regenerates every experiment's artifacts into a scratch
# directory and diffs them against the checked-in results/, proving that
# a refactor (e.g. a lint-driven fix) left the default output
# byte-identical. The .txt tables must match exactly; the .json
# artifacts embed per-run metadata by design (wall_ms, created_at, and —
# on instrumented runs — sim_events / events_per_sec, which depend on
# host speed and on whether the fabric fast path was pinned off; see
# internal/runner artifacts), so those fields are filtered before
# comparing. The scratch directory is removed on success and left in
# place on failure for inspection. Full fidelity takes ~15 min on one
# core.
fix-verify:
	rm -rf .fix-verify-results
	$(GO) run ./cmd/repro -exp all -out .fix-verify-results >/dev/null
	diff -ru --exclude=README.md --exclude='*.json' results .fix-verify-results
	@for f in results/*.json; do \
		b=$$(basename $$f); \
		diff <(grep -vE '"(wall_ms|created_at|sim_events|events_per_sec|checksum)"' $$f) \
		     <(grep -vE '"(wall_ms|created_at|sim_events|events_per_sec|checksum)"' .fix-verify-results/$$b) \
			|| { echo "fix-verify: $$b differs beyond per-run metadata"; exit 1; }; \
	done
	rm -rf .fix-verify-results
	@echo "results/ verified byte-identical (modulo per-run metadata in .json)"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# serve-smoke boots the simd job server on an ephemeral port, POSTs a
# quick fig1a job, follows the SSE stream to completion, asserts the
# second identical POST is a cache hit with the same checksum, and
# checks SIGTERM drains cleanly.
serve-smoke:
	./scripts/serve-smoke.sh

# shard-smoke is the end-to-end determinism gate for the parallel
# kernel, through the CLI rather than the test harness: fig5 (the
# rendezvous-heavy experiment that caught the window-overrun bug) must
# render byte-identically serial and with -shards 4. The unit suites
# cover the kernel in depth; this leg covers the cmd/repro flag
# plumbing and artifact rendering on top of it.
shard-smoke:
	rm -rf .shard-1 .shard-4
	$(GO) run ./cmd/repro -exp fig5 -quick -jobs 1 -out .shard-1 >/dev/null
	$(GO) run ./cmd/repro -exp fig5 -quick -jobs 2 -shards 4 -out .shard-4 >/dev/null
	diff -ru --exclude='*.json' .shard-1 .shard-4
	rm -rf .shard-1 .shard-4
	@echo "shard-smoke: fig5 byte-identical at -shards 4"

bench:
	$(GO) test -bench=. -benchtime=1x

# bench-baseline records the per-experiment performance baseline
# (ns/op, allocs/op, reference event count, events/sec — serial and, with
# BENCH_SHARDS>1, through the sharded kernel) into BENCH_<n>.json via
# cmd/perfbase; bench-compare re-measures and fails on any experiment
# more than 10% slower than the newest baseline on disk. The baselines
# form a trajectory: <n> is the PR that recorded it, old files stay in
# the repo, and BENCH_LATEST picks the highest-numbered one so compare
# always gates against the most recent recording.
BENCH_LATEST = $(shell ls BENCH_*.json 2>/dev/null | sort -V | tail -1)
BENCH_NEXT ?= BENCH_9.json
BENCH_SHARDS ?= 4

bench-baseline:
	$(GO) run ./cmd/perfbase -shards $(BENCH_SHARDS) -write $(BENCH_NEXT)

bench-compare:
	$(GO) run ./cmd/perfbase -compare $(BENCH_LATEST)

regen:
	$(GO) run ./cmd/repro -exp all -out results

# chaos runs the whole suite under a fixed-seed randomized fault storm on
# every fabric, with per-job retries on, serial and parallel, and asserts
# the two runs are byte-identical: fault injection, recovery, and the
# runner's failure handling are all deterministic functions of (spec,
# seed). An experiment that dies under the storm (e.g. an IB QP error
# after retry exhaustion) is a legitimate deterministic outcome, so a
# nonzero repro exit is tolerated — but the SAME experiments must survive
# at every worker/shard count, which the directory diff enforces (a
# missing or extra artifact fails it). The .txt tables must match
# exactly; .json artifacts are compared modulo the same per-run metadata
# as fix-verify (plus the jobs/shards execution knobs, which differ
# between legs by construction).
#
# The sharded legs are held to a deliberately different contract. Under a
# collision-heavy storm, quantized retransmission timeouts pile many
# events onto the same timestamp, and at equal timestamps the sharded
# kernel schedules shard-local events before cross-shard arrivals while
# the serial kernel uses global allocation order (DESIGN.md §12.4) — a
# different but equally deterministic tie-break, which can swap per-link
# loss draws. So the storm gate for shards is: (a) sharded output is a
# pure function of the spec — byte-identical across worker counts — and
# (b) the surviving-experiment set matches serial exactly. Fault-free
# byte-identity between serial and sharded is enforced by shard-smoke.
#
# Each leg runs under -chaos-strict rather than `|| true`: an experiment
# the storm deterministically kills (IB retry-budget exhaustion) is a
# tolerated outcome and the leg still exits 0, but any OTHER failure —
# a panic, a timeout, a real bug the storm shook loose — fails the
# target instead of being silently swallowed.
chaos:
	rm -rf .chaos-1 .chaos-n .chaos-s .chaos-s1
	$(GO) run ./cmd/repro -exp all -quick -faults storm:2026 -retries 2 -chaos-strict -jobs 1 -out .chaos-1 >/dev/null
	$(GO) run ./cmd/repro -exp all -quick -faults storm:2026 -retries 2 -chaos-strict -jobs 8 -out .chaos-n >/dev/null
	$(GO) run ./cmd/repro -exp all -quick -faults storm:2026 -retries 2 -chaos-strict -jobs 8 -shards 4 -out .chaos-s >/dev/null
	$(GO) run ./cmd/repro -exp all -quick -faults storm:2026 -retries 2 -chaos-strict -jobs 1 -shards 4 -out .chaos-s1 >/dev/null
	@ls .chaos-1/*.txt >/dev/null 2>&1 || { echo "chaos: no experiment survived the storm"; exit 1; }
	diff -ru --exclude='*.json' .chaos-1 .chaos-n
	diff -ru --exclude='*.json' .chaos-s .chaos-s1
	@a=$$(cd .chaos-1 && ls); b=$$(cd .chaos-s && ls); \
		[ "$$a" = "$$b" ] || { echo "chaos: survivor set differs between serial and sharded legs"; exit 1; }
	@for f in .chaos-1/*.json; do \
		b=$$(basename $$f); \
		diff <(grep -vE '"(wall_ms|created_at|sim_events|events_per_sec|jobs|shards)"' $$f) \
		     <(grep -vE '"(wall_ms|created_at|sim_events|events_per_sec|jobs|shards)"' .chaos-n/$$b) \
			|| { echo "chaos: $$b differs between .chaos-1 and .chaos-n"; exit 1; }; \
	done
	@for f in .chaos-s/*.json; do \
		b=$$(basename $$f); \
		diff <(grep -vE '"(wall_ms|created_at|sim_events|events_per_sec|jobs|shards)"' $$f) \
		     <(grep -vE '"(wall_ms|created_at|sim_events|events_per_sec|jobs|shards)"' .chaos-s1/$$b) \
			|| { echo "chaos: $$b differs between .chaos-s and .chaos-s1"; exit 1; }; \
	done
	rm -rf .chaos-1 .chaos-n .chaos-s .chaos-s1
	@echo "chaos: storm:2026 deterministic across worker counts; sharded legs self-deterministic with serial survivor parity"

# campaign runs the behavioral-contract exploration engine
# (internal/campaign) over a fixed-seed batch of generated scenarios:
# fault plans × topologies × workloads × protocol thresholds × execution
# knobs, each checked against the BC-1..BC-9 contract catalog, with
# violations auto-shrunk to minimal reproducers written into corpus/.
# Deterministic: the same seed prints the same report digest at any job
# count. Exits nonzero on any violation. ~1s at the default size; raise
# CAMPAIGN_N for a deeper sweep.
CAMPAIGN_N ?= 64
CAMPAIGN_SEED ?= 2026

campaign:
	$(GO) run ./cmd/repro -campaign $(CAMPAIGN_N) -campaign-seed $(CAMPAIGN_SEED) -campaign-corpus corpus

# trace-demo produces sample observability artifacts: a counters snapshot
# and a chrome://tracing (or ui.perfetto.dev) loadable timeline of the
# fig1b bidirectional-bandwidth runs.
trace-demo:
	$(GO) run ./cmd/repro -exp fig1b -quick -metrics trace-demo-metrics.json -tracefile trace-demo.json
	@echo "wrote trace-demo-metrics.json and trace-demo.json (load in chrome://tracing)"
