// halo2d: a user-written application on the public API — a 2D Jacobi-style
// stencil with halo exchange — swept across process counts on both
// interconnects, printing time and parallel efficiency.
//
// This is the workload class the paper's introduction motivates: regular
// nearest-neighbour exchange with a computation phase per iteration, run as
// a fixed-size (strong-scaling) study.
package main

import (
	"fmt"
	"log"

	"repro"
)

const (
	gridN      = 4096 // global N x N cells
	iterations = 30
	cellCost   = 6 * repro.Nanosecond // per-cell update
	cellBytes  = 8                    // one double per boundary cell
)

// factor2 splits p into the most square px*py.
func factor2(p int) (int, int) {
	best := [2]int{p, 1}
	for a := 1; a*a <= p; a++ {
		if p%a == 0 {
			best = [2]int{p / a, a}
		}
	}
	return best[0], best[1]
}

func stencil(r *repro.Rank) {
	px, py := factor2(r.Size())
	x, y := r.ID()%px, r.ID()/px
	nx, ny := gridN/px, gridN/py
	work := repro.Duration(nx*ny) * cellCost

	left, right := -1, -1
	if x > 0 {
		left = r.ID() - 1
	}
	if x < px-1 {
		right = r.ID() + 1
	}
	down, up := -1, -1
	if y > 0 {
		down = r.ID() - px
	}
	if y < py-1 {
		up = r.ID() + px
	}

	for it := 0; it < iterations; it++ {
		var reqs []*repro.Request
		for _, nbr := range []struct {
			rank  int
			bytes repro.Bytes
		}{
			{left, repro.Bytes(ny * cellBytes)},
			{right, repro.Bytes(ny * cellBytes)},
			{down, repro.Bytes(nx * cellBytes)},
			{up, repro.Bytes(nx * cellBytes)},
		} {
			if nbr.rank < 0 {
				continue
			}
			reqs = append(reqs, r.Irecv(nbr.rank, it))
			reqs = append(reqs, r.Isend(nbr.rank, it, nbr.bytes))
		}
		r.Compute(work, 0.4)
		r.Waitall(reqs...)
		if it%10 == 9 {
			r.Allreduce(8) // residual check
		}
	}
}

func main() {
	fmt.Printf("2D stencil, %dx%d fixed grid, %d iterations (strong scaling)\n\n", gridN, gridN, iterations)
	fmt.Printf("%-6s  %-26s  %-26s\n", "procs", "Quadrics Elan-4", "4X InfiniBand")
	var base [2]float64
	for pi, procs := range []int{1, 4, 16, 64} {
		row := fmt.Sprintf("%-6d", procs)
		for ni, network := range repro.Networks {
			cluster, err := repro.NewCluster(network, procs, 1)
			if err != nil {
				log.Fatal(err)
			}
			res, err := cluster.Run(stencil)
			if err != nil {
				log.Fatal(err)
			}
			secs := res.Elapsed.Seconds()
			if pi == 0 {
				base[ni] = secs
			}
			eff := base[ni] / (float64(procs) * secs) * 100
			row += fmt.Sprintf("  %10.4fs  eff %5.1f%%", secs, eff)
		}
		fmt.Println(row)
	}
	fmt.Println("\nThe fixed problem shrinks per-process work as P grows, so the")
	fmt.Println("lower-latency, offloaded interconnect holds efficiency longer —")
	fmt.Println("the same mechanism behind the paper's NAS CG result (Figure 6).")
}
