// profile: the observability features — run the same program on both
// interconnects and diff the built-in communication profile and event
// trace. This is how a user of this library would localize a slowdown
// without reading a paper about it.
package main

import (
	"fmt"
	"log"

	"repro"
)

func workload(r *repro.Rank) {
	peer := (r.ID() + 2) % r.Size() // cross-node partner
	for step := 0; step < 5; step++ {
		rreq := r.Irecv(peer, step)
		sreq := r.Isend(peer, step, 512*repro.KiB)
		r.Compute(2*repro.Millisecond, 0.3)
		r.Wait(sreq)
		r.Wait(rreq)
		r.Allreduce(64)
	}
}

func main() {
	for _, network := range repro.Networks {
		cluster, err := repro.NewCluster(network, 4, 2)
		if err != nil {
			log.Fatal(err)
		}
		cluster.EnableTrace(12)
		res, err := cluster.Run(workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s: %v ===\n", network, res.Elapsed)
		fmt.Println(cluster.Profile())

		events, total := cluster.Trace()
		fmt.Printf("trace tail (%d of %d events):\n", len(events), total)
		fmt.Print(repro.FormatTrace(events))
		fmt.Println()
	}
	fmt.Println("Same program, same message mix — the profile shows where the")
	fmt.Println("time went: blocked-in-MPI grows on the network whose transfers")
	fmt.Println("cannot overlap computation.")
}
