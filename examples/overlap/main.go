// overlap: demonstrate independent progress — the architectural property
// the paper credits for Quadrics' application-level advantage (Sections
// 3.3.3 and 3.3.5).
//
// Each of two ranks posts a nonblocking receive and a nonblocking send of a
// large message, computes for a fixed interval without touching MPI, then
// waits. On Elan-4 the NIC completes the whole rendezvous during the
// compute interval, so total time ~= compute time. On InfiniBand/MVAPICH
// nothing progresses until the hosts re-enter MPI, so the transfer
// serializes after the computation.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const compute = 20 * repro.Millisecond
	sizes := []repro.Bytes{64 * repro.KiB, 512 * repro.KiB, 2 * repro.MiB, 8 * repro.MiB}

	fmt.Printf("Pattern per rank: Irecv + Isend(size), Compute(%v), Wait.\n", compute)
	fmt.Println("Ratio = total time / compute time. 1.00 means the transfer was fully hidden.")
	fmt.Println()
	fmt.Printf("%-10s  %-14s  %-14s\n", "size", "Elan-4 ratio", "IB ratio")
	for _, size := range sizes {
		row := fmt.Sprintf("%-10s", size)
		for _, network := range repro.Networks {
			cluster, err := repro.NewCluster(network, 2, 1)
			if err != nil {
				log.Fatal(err)
			}
			var total repro.Duration
			_, err = cluster.Run(func(r *repro.Rank) {
				peer := 1 - r.ID()
				start := r.Now()
				rreq := r.Irecv(peer, 0)
				sreq := r.Isend(peer, 0, size)
				r.Compute(compute, 0)
				r.Wait(sreq)
				r.Wait(rreq)
				if r.ID() == 0 {
					total = r.Now().Sub(start)
				}
			})
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("  %14.3f", float64(total)/float64(compute))
		}
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Println("Quadrics' NIC thread performs matching and the rendezvous handshake")
	fmt.Println("itself; MVAPICH must wait for both hosts' next MPI call, so overlap is")
	fmt.Println("lost — exactly the asymmetry the paper observes in LAMMPS (Figure 3).")
}
