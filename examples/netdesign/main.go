// netdesign: a design-space exploration combining the performance model and
// the cost model — for a range of cluster sizes, what does each
// interconnect cost, and what effective bandwidth does a job of that size
// get per dollar?
//
// This reproduces the paper's closing argument (Sections 5-6): raw
// cost-per-port favours commodity InfiniBand switches; delivered
// effective bandwidth favours Elan-4; whether the performance offsets the
// price depends on how much the application resembles b_eff.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	prices := repro.Prices()
	fmt.Println("Cluster design study: price vs delivered effective bandwidth (b_eff)")
	fmt.Println()
	fmt.Printf("%-6s  %-34s  %-34s\n", "nodes", "Quadrics Elan-4", "4X InfiniBand (24/288 switches)")
	fmt.Printf("%-6s  %-12s %-10s %-10s  %-12s %-10s %-10s\n",
		"", "net $/node", "beff/proc", "KB/s per $", "net $/node", "beff/proc", "KB/s per $")

	for _, nodes := range []int{4, 8, 16, 32} {
		elanNet, err := repro.PriceElan(prices, nodes)
		if err != nil {
			log.Fatal(err)
		}
		ibNet, err := repro.PriceIBCombo(prices, nodes)
		if err != nil {
			log.Fatal(err)
		}
		elanBeff, err := repro.BEff(repro.QuadricsElan4, nodes, 3, 7)
		if err != nil {
			log.Fatal(err)
		}
		ibBeff, err := repro.BEff(repro.InfiniBand4X, nodes, 3, 7)
		if err != nil {
			log.Fatal(err)
		}
		perDollar := func(beffMBps float64, netPerNode float64) float64 {
			system := netPerNode + float64(prices.NodeCost)
			return beffMBps * 1000 / system
		}
		eP := float64(elanNet.PerPort())
		iP := float64(ibNet.PerPort())
		eB := elanBeff.PerProcess.MBpsValue()
		iB := ibBeff.PerProcess.MBpsValue()
		fmt.Printf("%-6d  $%-11.0f %-10.1f %-10.2f  $%-11.0f %-10.1f %-10.2f\n",
			nodes, eP, eB, perDollar(eB, eP), iP, iB, perDollar(iB, iP))
	}
	fmt.Println()
	fmt.Println("Elan-4 delivers more effective bandwidth per process; commodity-switch")
	fmt.Println("InfiniBand delivers more per dollar — the paper's cost-performance")
	fmt.Println("tension in one table.")
}
