// Quickstart: build a two-node cluster on each interconnect, measure
// ping-pong latency and bandwidth, and print a small comparison — the
// "hello world" of this library.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	sizes := []repro.Bytes{0, 1 * repro.KiB, 8 * repro.KiB, 1 * repro.MiB}

	fmt.Println("Two-node ping-pong, 2004-calibrated platform")
	fmt.Println()
	fmt.Printf("%-10s  %-22s  %-22s\n", "size", "Quadrics Elan-4", "4X InfiniBand")
	for i, size := range sizes {
		row := fmt.Sprintf("%-10s", size)
		for _, network := range repro.Networks {
			pts, err := repro.PingPong(network, []repro.Bytes{size}, 20)
			if err != nil {
				log.Fatal(err)
			}
			cell := fmt.Sprintf("%8.2f us", pts[0].Latency.Microseconds())
			if size > 0 {
				cell += fmt.Sprintf(" %8.0f MB/s", pts[0].Bandwidth.MBpsValue())
			} else {
				cell += "          (lat)"
			}
			row += "  " + cell
		}
		fmt.Println(row)
		_ = i
	}

	fmt.Println()
	fmt.Println("Now a hand-written MPI program: a 4-rank ring exchange.")
	for _, network := range repro.Networks {
		cluster, err := repro.NewCluster(network, 4, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cluster.Run(func(r *repro.Rank) {
			next := (r.ID() + 1) % r.Size()
			prev := (r.ID() + r.Size() - 1) % r.Size()
			for i := 0; i < 10; i++ {
				r.Sendrecv(next, 0, 64*repro.KiB, prev, 0)
			}
			r.Barrier()
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s 10 ring exchanges of 64 KiB: %v\n", network, res.Elapsed)
	}
}
