// Package repro is a simulation study of two cluster interconnects — 4X
// InfiniBand (Voltaire/MVAPICH) and Quadrics QsNetII Elan-4 (Tports) — that
// reproduces Brightwell, Doerfler & Underwood, "A Comparison of 4X
// InfiniBand and Quadrics Elan-4 Technologies" (IEEE CLUSTER 2004).
//
// The package is the public facade over the simulator:
//
//   - Build a Cluster on either interconnect and run MPI-style programs on
//     it (Rank offers Send/Recv/Isend/Irecv/Wait, collectives, and timed
//     Compute phases).
//   - Run the paper's micro-benchmarks (PingPong, Streaming, BEff).
//   - Regenerate any of the paper's tables and figures (Experiments,
//     RunExperiment), or price networks with the cost model.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results against the paper's anchors.
package repro

import (
	"repro/internal/cost"
	"repro/internal/experiments"
	"repro/internal/microbench"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/units"
)

// Network selects the interconnect of a Cluster.
type Network = platform.Network

// The two interconnects under study.
const (
	InfiniBand4X  = platform.InfiniBand4X
	QuadricsElan4 = platform.QuadricsElan4
)

// Networks lists both interconnects in the paper's plotting order.
var Networks = platform.Networks

// Core MPI-facing types, aliased from the engine so user code needs only
// this package.
type (
	// Rank is one MPI process of a running job.
	Rank = mpi.Rank
	// Request is a nonblocking operation handle.
	Request = mpi.Request
	// Status describes a completed receive.
	Status = mpi.Status
	// Result summarizes a completed run.
	Result = mpi.Result
)

// AnySource matches receives from any sender (1 process per node only).
const AnySource = mpi.AnySource

// Size and time units.
type (
	// Bytes is a data size.
	Bytes = units.Bytes
	// Duration is a simulated time span.
	Duration = units.Duration
	// Rate is a data rate.
	Rate = units.Rate
)

// Re-exported unit constants.
const (
	KiB = units.KiB
	MiB = units.MiB

	Nanosecond  = units.Nanosecond
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second

	MBps = units.MBps
	GBps = units.GBps
)

// Cluster is a simulated machine: identical dual-CPU PCI-X nodes wired with
// the chosen interconnect, running one MPI job.
type Cluster struct {
	machine *platform.Machine
}

// NewCluster builds a cluster of ranks MPI processes at ppn processes per
// node on the given interconnect, with the calibrated 2004-platform
// parameters.
func NewCluster(network Network, ranks, ppn int) (*Cluster, error) {
	m, err := platform.New(platform.Options{Network: network, Ranks: ranks, PPN: ppn})
	if err != nil {
		return nil, err
	}
	return &Cluster{machine: m}, nil
}

// Run executes app once per rank, to completion, and reports elapsed
// simulated time. It may be called again on the same cluster; simulated
// time accumulates (useful for warmup/measurement splits).
func (c *Cluster) Run(app func(r *Rank)) (*Result, error) {
	return c.machine.Run(app)
}

// Network reports the cluster's interconnect.
func (c *Cluster) Network() Network { return c.machine.Network }

// Profile types, re-exported for post-run analysis.
type (
	// Profile summarizes where a run's time went and what its message
	// population looked like.
	Profile = mpi.Profile
	// SizeClass is one bucket of the sent-message size histogram.
	SizeClass = mpi.SizeClass
)

// Profile reports the communication profile of everything run on this
// cluster so far.
func (c *Cluster) Profile() *Profile { return c.machine.World.Profile() }

// Comm is an MPI communicator (see Rank.CommWorld and Comm.Split).
type Comm = mpi.Comm

// TraceEvent is one record of a rank's activity when tracing is enabled.
type TraceEvent = mpi.TraceEvent

// EnableTrace records up to capacity events (newest retained) across
// subsequent Run calls.
func (c *Cluster) EnableTrace(capacity int) { c.machine.World.EnableTrace(capacity) }

// Trace returns recorded events in time order plus the total observed.
func (c *Cluster) Trace() ([]TraceEvent, uint64) { return c.machine.World.Trace() }

// FormatTrace renders trace events as a per-rank timeline.
func FormatTrace(events []TraceEvent) string { return mpi.FormatTrace(events) }

// Micro-benchmark re-exports (Figure 1).
type (
	// PingPongPoint is a latency/bandwidth measurement at one size.
	PingPongPoint = microbench.PingPongPoint
	// StreamingPoint is a streaming-bandwidth measurement at one size.
	StreamingPoint = microbench.StreamingPoint
	// BEffResult is an effective-bandwidth (b_eff) measurement.
	BEffResult = microbench.BEffResult
)

// PingPong measures average one-way latency between two nodes for each
// message size (the Pallas PingPong method).
func PingPong(network Network, sizes []Bytes, iters int) ([]PingPongPoint, error) {
	return microbench.PingPong(network, sizes, iters)
}

// Streaming measures sustained unidirectional bandwidth with `window`
// messages in flight.
func Streaming(network Network, sizes []Bytes, window, iters int) ([]StreamingPoint, error) {
	return microbench.Streaming(network, sizes, window, iters)
}

// BEff measures the effective bandwidth of a job of the given size.
func BEff(network Network, ranks, itersPerSize int, seed uint64) (*BEffResult, error) {
	return microbench.BEff(network, ranks, itersPerSize, seed)
}

// DefaultSizes returns the paper's message-size sweep (0 B to 4 MB).
func DefaultSizes() []Bytes { return microbench.DefaultSizes() }

// ExperimentInfo identifies one reproducible table or figure.
type ExperimentInfo struct {
	ID    string
	Title string
}

// Experiments lists every reproducible artifact (tables 1-3, figures 1-8,
// and the extension experiments).
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	return out
}

// RunExperiment regenerates one artifact and returns its rendered tables.
// Quick mode shrinks sweeps for smoke runs.
func RunExperiment(id string, quick bool) (string, error) {
	e, err := experiments.Get(id)
	if err != nil {
		return "", err
	}
	res, err := e.Run(experiments.Options{Quick: quick})
	if err != nil {
		return "", err
	}
	return res.String(), nil
}

// Cost-model re-exports (Tables 2-3, Figure 7).
type (
	// PriceList holds the April 2004 component prices.
	PriceList = cost.PriceList
	// PricedNetwork is a priced interconnect design.
	PricedNetwork = cost.Network
	// USD is a price in dollars.
	USD = cost.USD
)

// Prices returns the paper's list prices (assumed entries flagged).
func Prices() PriceList { return cost.April2004() }

// PriceElan prices a QsNetII network for the given node count.
func PriceElan(p PriceList, nodes int) (*PricedNetwork, error) {
	return cost.ElanNetwork(p, nodes)
}

// PriceIB prices a homogeneous InfiniBand network (radix 24, 96, or 288).
func PriceIB(p PriceList, nodes, radix int) (*PricedNetwork, error) {
	return cost.IBNetwork(p, nodes, radix)
}

// PriceIBCombo prices the cheapest 24/288-port InfiniBand design.
func PriceIBCombo(p PriceList, nodes int) (*PricedNetwork, error) {
	return cost.IBComboNetwork(p, nodes)
}
